package sched

import (
	"fmt"
	"math/bits"

	"repro/internal/platform"
	"repro/internal/taskgraph"
)

// State is the incremental engine for the paper's §4.3 scheduling operation.
// It maintains, for a partial schedule, everything the search layers need in
// O(1)-amortized per query: per-task placements, per-processor frontier
// times, per-task unscheduled-predecessor counts (readiness), and the
// running maximum lateness.
//
// Place appends one task to one processor's queue at its earliest start
// time; Undo reverts the most recent Place. The Place/Undo pair makes State
// suitable both for depth-first searches (recursion with undo) and for
// rebuilding the state of an arbitrary search-tree vertex from its ancestor
// chain (Reset + replay).
//
// A State is not safe for concurrent use; parallel searches give each
// worker its own State.
type State struct {
	G *taskgraph.Graph
	P platform.Platform

	proc     []platform.Proc
	start    []taskgraph.Time
	finish   []taskgraph.Time
	procFree []taskgraph.Time // finish time of the last task on each processor
	remPreds []int32          // unplaced direct predecessors per task
	lmax     taskgraph.Time   // max lateness over placed tasks
	placed   int

	// predMsg[id][k] is the message size on the arc Preds(id)[k] → id,
	// flattened out of the graph's channel map at construction: EST sits on
	// the innermost search loop, and a map lookup per predecessor edge per
	// Place dominates its cost. arrival/exec/absDl likewise flatten the
	// per-task constants out of the Task struct copies.
	predMsg [][]taskgraph.Time
	arrival []taskgraph.Time
	exec    []taskgraph.Time
	absDl   []taskgraph.Time

	// Heterogeneous-platform caches, all nil on homogeneous-universal
	// platforms so the hot path stays byte-for-byte the legacy one.
	// hetExec is the per-(processor, task) execution time flattened
	// q-major (hetExec[q*n+id]); minExec is the per-task minimum over
	// allowed processors (the admissible bound floor); aff mirrors the
	// platform's affinity masks.
	hetExec []taskgraph.Time
	minExec []taskgraph.Time
	aff     []uint64

	// trail records the information needed to revert each Place.
	trail []trailEntry

	// sig is the optional incremental canonical signature (signature.go);
	// sig.on is false until EnableSignature, keeping the default Place/Undo
	// instruction stream untouched.
	sig stateSig
}

type trailEntry struct {
	task         taskgraph.TaskID
	proc         platform.Proc
	prevProcFree taskgraph.Time
	prevLmax     taskgraph.Time
}

// NewState returns a fresh State for the graph and platform. The graph must
// be validated (acyclic) beforehand; NewState panics otherwise, since every
// search layer depends on a consistent readiness relation.
func NewState(g *taskgraph.Graph, p platform.Platform) *State {
	if err := p.ValidateFor(g.NumTasks()); err != nil {
		panic(fmt.Errorf("sched: NewState on invalid platform: %w", err))
	}
	if _, err := g.TopoOrder(); err != nil {
		panic(fmt.Errorf("sched: NewState on invalid graph: %w", err))
	}
	n := g.NumTasks()
	s := &State{
		G: g, P: p,
		proc:     make([]platform.Proc, n),
		start:    make([]taskgraph.Time, n),
		finish:   make([]taskgraph.Time, n),
		procFree: make([]taskgraph.Time, p.M),
		remPreds: make([]int32, n),
		trail:    make([]trailEntry, 0, n),
		predMsg:  make([][]taskgraph.Time, n),
		arrival:  make([]taskgraph.Time, n),
		exec:     make([]taskgraph.Time, n),
		absDl:    make([]taskgraph.Time, n),
	}
	for id := 0; id < n; id++ {
		t := g.Task(taskgraph.TaskID(id))
		s.arrival[id], s.exec[id], s.absDl[id] = t.Arrival(), t.Exec, t.AbsDeadline()
		preds := g.Preds(taskgraph.TaskID(id))
		if len(preds) == 0 {
			continue
		}
		msgs := make([]taskgraph.Time, len(preds))
		for k, pred := range preds {
			msgs[k] = g.MessageSize(pred, taskgraph.TaskID(id))
		}
		s.predMsg[id] = msgs
	}
	if p.Heterogeneous() {
		if !p.Uniform() {
			s.hetExec = make([]taskgraph.Time, p.M*n)
			for q := 0; q < p.M; q++ {
				for id := 0; id < n; id++ {
					s.hetExec[q*n+id] = p.ExecCost(s.exec[id], platform.Proc(q))
				}
			}
		}
		s.minExec = make([]taskgraph.Time, n)
		for id := 0; id < n; id++ {
			s.minExec[id] = p.MinExecCost(taskgraph.TaskID(id), s.exec[id])
		}
		if !p.UniversalAffinity() {
			s.aff = make([]uint64, n)
			for id := 0; id < n; id++ {
				s.aff[id] = p.AllowedMask(taskgraph.TaskID(id))
			}
		}
	}
	s.Reset()
	return s
}

// Hetero reports whether the state runs on a heterogeneous platform
// (non-unit speed factors and/or restricted affinities). Search layers use
// it to route between the optimized homogeneous bound machinery and the
// generalized heterogeneous sweep.
func (s *State) Hetero() bool { return s.hetExec != nil || s.aff != nil }

// Reset returns the state to the empty schedule.
func (s *State) Reset() {
	for i := range s.proc {
		s.proc[i] = platform.NoProc
		s.remPreds[i] = int32(s.G.InDegree(taskgraph.TaskID(i)))
	}
	for q := range s.procFree {
		s.procFree[q] = 0
	}
	s.lmax = taskgraph.MinTime
	s.placed = 0
	s.trail = s.trail[:0]
	if s.sig.on {
		s.recomputeSignature()
	}
}

// NumPlaced returns the number of placed tasks (the vertex level).
func (s *State) NumPlaced() int { return s.placed }

// Placed reports whether the task has been scheduled.
func (s *State) Placed(id taskgraph.TaskID) bool { return s.proc[id] != platform.NoProc }

// Proc returns the processor of a placed task, NoProc otherwise.
func (s *State) Proc(id taskgraph.TaskID) platform.Proc { return s.proc[id] }

// Start returns the start time of a placed task.
func (s *State) Start(id taskgraph.TaskID) taskgraph.Time { return s.start[id] }

// Finish returns the finish time of a placed task.
func (s *State) Finish(id taskgraph.TaskID) taskgraph.Time { return s.finish[id] }

// Lmax returns the maximum lateness over placed tasks (MinTime when empty).
func (s *State) Lmax() taskgraph.Time { return s.lmax }

// ProcFree returns the earliest time processor q can accept a new task: the
// finish time of the last task appended to it.
func (s *State) ProcFree(q platform.Proc) taskgraph.Time { return s.procFree[q] }

// EarliestProcFree returns ℓ_min: the earliest time at which a new task can
// be scheduled on ANY processor. This is the adaptive term of the
// contention-aware lower bound LB1.
func (s *State) EarliestProcFree() taskgraph.Time {
	min := s.procFree[0]
	for _, f := range s.procFree[1:] {
		if f < min {
			min = f
		}
	}
	return min
}

// EarliestProcFreeFor returns ℓ_i: the earliest time at which the task can
// be scheduled on any processor its affinity mask allows. This is the
// per-processor generalization of LB1's ℓ_min term — under universal
// affinity it degenerates to EarliestProcFree.
func (s *State) EarliestProcFreeFor(id taskgraph.TaskID) taskgraph.Time {
	if s.aff == nil {
		return s.EarliestProcFree()
	}
	min := taskgraph.Infinity
	for mask := s.aff[id]; mask != 0; mask &= mask - 1 {
		q := bits.TrailingZeros64(mask)
		if s.procFree[q] < min {
			min = s.procFree[q]
		}
	}
	return min
}

// ExecOn returns the task's execution time on processor q: the nominal
// demand scaled by the processor's speed factor (identical to Exec on a
// homogeneous platform).
func (s *State) ExecOn(id taskgraph.TaskID, q platform.Proc) taskgraph.Time {
	if s.hetExec == nil {
		return s.exec[id]
	}
	return s.hetExec[int(q)*len(s.exec)+int(id)]
}

// MinExec returns the smallest execution time of the task over the
// processors its affinity mask allows — the admissible demand floor used by
// the heterogeneous lower bounds.
func (s *State) MinExec(id taskgraph.TaskID) taskgraph.Time {
	if s.minExec == nil {
		return s.exec[id]
	}
	return s.minExec[id]
}

// Allows reports whether the task may execute on processor q.
func (s *State) Allows(id taskgraph.TaskID, q platform.Proc) bool {
	return s.aff == nil || s.aff[id]>>uint(q)&1 == 1
}

// AllowedMask returns the bitmask of processors the task may execute on.
func (s *State) AllowedMask(id taskgraph.TaskID) uint64 {
	if s.aff == nil {
		if s.P.M >= 64 {
			return ^uint64(0)
		}
		return uint64(1)<<uint(s.P.M) - 1
	}
	return s.aff[id]
}

// Ready reports whether the task is ready: unplaced with every direct
// predecessor placed.
func (s *State) Ready(id taskgraph.TaskID) bool {
	return s.proc[id] == platform.NoProc && s.remPreds[id] == 0
}

// ReadyTasks appends all ready tasks to buf (in ID order) and returns it.
// Pass a reused buffer to avoid allocation in search loops.
func (s *State) ReadyTasks(buf []taskgraph.TaskID) []taskgraph.TaskID {
	for id := 0; id < s.G.NumTasks(); id++ {
		if s.Ready(taskgraph.TaskID(id)) {
			buf = append(buf, taskgraph.TaskID(id))
		}
	}
	return buf
}

// EST returns the earliest start time of a ready task on processor q per
// the §4.3 operation:
//
//	max( a_i,
//	     max over placed preds j of f_j + comm(p_j, q, m_{j,i}),
//	     procFree[q] )
//
// EST does not verify readiness; calling it for a task with unplaced
// predecessors silently ignores them and is a caller bug. The search layers
// only call it on ready tasks.
func (s *State) EST(id taskgraph.TaskID, q platform.Proc) taskgraph.Time {
	est := s.arrival[id]
	for k, pred := range s.G.Preds(id) {
		ready := s.finish[pred] + s.P.CommCost(s.proc[pred], q, s.predMsg[id][k])
		if ready > est {
			est = ready
		}
	}
	if s.procFree[q] > est {
		est = s.procFree[q]
	}
	return est
}

// Place schedules a ready task on processor q at its earliest start time and
// returns the placement. It panics when the task is not ready, q is out of
// range, or the task's affinity mask excludes q — all indicate search-layer
// bugs that must not be masked.
func (s *State) Place(id taskgraph.TaskID, q platform.Proc) Placement {
	if !s.Ready(id) {
		panicNonReady(id, s.Placed(id), s.remPreds[id])
	}
	if q < 0 || int(q) >= s.P.M {
		panicBadProc(id, q)
	}
	if s.aff != nil && s.aff[id]>>uint(q)&1 == 0 {
		panicAffinity(id, q)
	}
	start := s.EST(id, q)
	exec := s.exec[id]
	if s.hetExec != nil {
		exec = s.hetExec[int(q)*len(s.exec)+int(id)]
	}
	finish := start + exec

	s.trail = append(s.trail, trailEntry{
		task: id, proc: q, prevProcFree: s.procFree[q], prevLmax: s.lmax,
	})

	s.proc[id] = q
	s.start[id] = start
	s.finish[id] = finish
	s.procFree[q] = finish
	s.placed++
	for _, succ := range s.G.Succs(id) {
		s.remPreds[succ]--
	}
	if lat := finish - s.absDl[id]; lat > s.lmax {
		s.lmax = lat
	}
	if s.sig.on {
		s.sigPlace(id, q, s.trail[len(s.trail)-1].prevProcFree, finish)
	}
	if debugAsserts {
		s.checkInvariants()
	}
	return Placement{Task: id, Proc: q, Start: start, Finish: finish}
}

// Undo reverts the most recent Place. It panics on an empty trail.
func (s *State) Undo() {
	last := s.trail[len(s.trail)-1]
	s.trail = s.trail[:len(s.trail)-1]

	if s.sig.on {
		s.sigUnplace(last.task, last.proc, last.prevProcFree, s.finish[last.task])
	}
	s.proc[last.task] = platform.NoProc
	s.procFree[last.proc] = last.prevProcFree
	s.lmax = last.prevLmax
	s.placed--
	for _, succ := range s.G.Succs(last.task) {
		s.remPreds[succ]++
	}
	if debugAsserts {
		s.checkInvariants()
	}
}

// Depth returns the number of Places currently on the trail (== NumPlaced
// unless the caller mixed Reset styles).
func (s *State) Depth() int { return len(s.trail) }

// TrailView is the caller-visible projection of one trail entry: which
// task was placed on which processor at that depth. Search layers diff
// the trail against a vertex's ancestor chain to find the fork point of
// an incremental re-materialization — because a placement sequence fully
// determines the schedule state, two prefixes with equal (task, proc)
// pairs are interchangeable.
type TrailView struct {
	Task taskgraph.TaskID
	Proc platform.Proc
}

// TrailEntry returns the i-th placement on the trail (0 = placed first).
// The index must be in [0, Depth()).
func (s *State) TrailEntry(i int) TrailView {
	e := s.trail[i]
	return TrailView{Task: e.task, Proc: e.proc}
}

// TruncateTo undoes the most recent Places until only the first depth
// placements remain on the trail. It panics when depth exceeds the
// current trail depth — truncation can only shrink a schedule.
func (s *State) TruncateTo(depth int) {
	if depth < 0 || depth > len(s.trail) {
		panicBadDepth(depth, len(s.trail))
	}
	for len(s.trail) > depth {
		s.Undo()
	}
}

// The panic formatters live outside the hot operations: fmt boxes its
// arguments into interfaces, and escape analysis charges that boxing to
// the function performing it. Keeping it here leaves Place and
// TruncateTo allocation-free, which bbvet's hotalloc gate enforces.
//
//go:noinline
func panicNonReady(id taskgraph.TaskID, placed bool, rem int32) {
	panic(fmt.Sprintf("sched: Place(%d) on non-ready task (placed=%v, remPreds=%d)", id, placed, rem))
}

//go:noinline
func panicBadProc(id taskgraph.TaskID, q platform.Proc) {
	panic(fmt.Sprintf("sched: Place(%d) on invalid processor %d", id, q))
}

//go:noinline
func panicAffinity(id taskgraph.TaskID, q platform.Proc) {
	panic(fmt.Sprintf("sched: Place(%d) on processor %d excluded by the task's affinity mask", id, q))
}

//go:noinline
func panicBadDepth(depth, trail int) {
	panic(fmt.Sprintf("sched: TruncateTo(%d) outside trail depth %d", depth, trail))
}

// Snapshot copies the current partial schedule into a standalone Schedule.
func (s *State) Snapshot() *Schedule {
	out := NewSchedule(s.G, s.P)
	for id := 0; id < s.G.NumTasks(); id++ {
		if s.proc[id] != platform.NoProc {
			out.Set(taskgraph.TaskID(id), s.proc[id], s.start[id])
		}
	}
	return out
}

// Placements returns the placement sequence in the order it was performed
// (the trail order), suitable for Replay on a fresh state. The result is
// freshly allocated.
func (s *State) Placements() []Placement {
	return s.AppendPlacements(make([]Placement, 0, len(s.trail)))
}

// AppendPlacements appends the placement sequence (trail order) to buf and
// returns it, allocating only when buf lacks capacity. It is the
// allocation-free counterpart of Placements for hot paths that record
// incumbents repeatedly into a reused buffer.
func (s *State) AppendPlacements(buf []Placement) []Placement {
	for _, e := range s.trail {
		buf = append(buf, Placement{Task: e.task, Proc: e.proc, Start: s.start[e.task], Finish: s.finish[e.task]})
	}
	return buf
}

// Replay resets the state and re-applies the given placements in order,
// asserting that each task is placed at exactly the recorded start time.
// This is how branch-and-bound vertices (which store only their own
// placement plus a parent pointer) are materialized, and doubles as an
// internal consistency check: a replay mismatch means the placement sequence
// was produced under a different graph, platform, or operation.
func (s *State) Replay(seq []Placement) error {
	s.Reset()
	for _, pl := range seq {
		got := s.Place(pl.Task, pl.Proc)
		if got.Start != pl.Start || got.Finish != pl.Finish {
			return fmt.Errorf("sched: replay mismatch for task %d on p%d: recorded [%d,%d), operation yields [%d,%d)",
				pl.Task, pl.Proc, pl.Start, pl.Finish, got.Start, got.Finish)
		}
	}
	return nil
}
