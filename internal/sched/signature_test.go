package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/taskgraph"
)

func sigOf(st *State) [2]uint64 {
	lo, hi := st.Signature()
	return [2]uint64{lo, hi}
}

// TestSignatureProcessorPermutationInvariant: relabeling the processors of
// a partial schedule never changes the signature — the invariance the
// transposition table's duplicate definition rests on.
func TestSignatureProcessorPermutationInvariant(t *testing.T) {
	f := func(seed int64, mSel, permSel uint8) bool {
		m := 2 + int(mSel%3)
		rng := rand.New(rand.NewSource(seed))
		g := gen.New(gen.Defaults(), seed).Graph()

		st := NewState(g, platform.New(m))
		st.EnableSignature()
		randomPrefix(st, rng, m)
		want := sigOf(st)

		// Apply a random processor permutation to the same placement
		// sequence. The §4.3 operation treats processors identically, so
		// the permuted replay is valid and yields identical times.
		perm := rand.New(rand.NewSource(int64(permSel) + seed)).Perm(m)
		st2 := NewState(g, platform.New(m))
		st2.EnableSignature()
		for i := 0; i < st.Depth(); i++ {
			e := st.TrailEntry(i)
			pl := st2.Place(e.Task, platform.Proc(perm[e.Proc]))
			if pl.Start != st.Start(e.Task) || pl.Finish != st.Finish(e.Task) {
				t.Fatalf("permuted replay diverged for task %d", e.Task)
			}
		}
		return sigOf(st2) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSignatureIncrementalMatchesRecompute: the O(1) Place/Undo updates
// agree with the from-scratch definition at every step, and Undo restores
// the exact previous signature.
func TestSignatureIncrementalMatchesRecompute(t *testing.T) {
	f := func(seed int64, mSel uint8) bool {
		m := 1 + int(mSel%4)
		rng := rand.New(rand.NewSource(seed))
		g := gen.New(gen.Defaults(), seed).Graph()
		st := NewState(g, platform.New(m))
		st.EnableSignature()

		var trace [][2]uint64
		trace = append(trace, sigOf(st))
		for {
			ready := st.ReadyTasks(nil)
			if len(ready) == 0 {
				break
			}
			st.Place(ready[rng.Intn(len(ready))], platform.Proc(rng.Intn(m)))
			got := sigOf(st)
			st.recomputeSignature()
			if sigOf(st) != got {
				return false
			}
			trace = append(trace, got)
		}
		for i := len(trace) - 2; i >= 0; i-- {
			st.Undo()
			if sigOf(st) != trace[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSignatureDistinguishesStates: distinct partial schedules (different
// task sets, finish times, or per-class processor groupings) get distinct
// signatures in practice. Not a cryptographic guarantee — just a smoke
// screen against degenerate mixing.
func TestSignatureDistinguishesStates(t *testing.T) {
	g := taskgraph.Diamond()
	m := 2
	seen := make(map[[2]uint64]string)
	var walk func(st *State)
	walk = func(st *State) {
		key := sigOf(st)
		canon := canonicalForm(st)
		if prev, ok := seen[key]; ok {
			// Equal signatures must mean the same permutation-normalized
			// state; anything else is a collision the mixer should never
			// produce on a 4-task space.
			if prev != canon {
				t.Fatalf("signature collision: %q vs %q", prev, canon)
			}
		} else {
			seen[key] = canon
		}
		ready := st.ReadyTasks(nil)
		for _, id := range ready {
			for q := 0; q < m; q++ {
				st.Place(id, platform.Proc(q))
				walk(st)
				st.Undo()
			}
		}
	}
	st := NewState(g, platform.New(m))
	st.EnableSignature()
	walk(st)
	if len(seen) < 10 {
		t.Fatalf("walk visited only %d distinct signatures", len(seen))
	}
}

// canonicalForm renders the permutation-normalized state: per-processor
// (task, finish) queues sorted lexicographically with the frontier time.
func canonicalForm(st *State) string {
	groups := make([]string, st.P.M)
	for i := 0; i < st.Depth(); i++ {
		e := st.TrailEntry(i)
		groups[e.Proc] += fmt.Sprintf("%d@%d,", e.Task, st.Finish(e.Task))
	}
	for q := range groups {
		groups[q] += fmt.Sprintf("|%d", st.ProcFree(platform.Proc(q)))
	}
	// Sort the per-processor strings (selection sort; m is tiny).
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			if groups[j] < groups[i] {
				groups[i], groups[j] = groups[j], groups[i]
			}
		}
	}
	out := ""
	for _, s := range groups {
		out += s + ";"
	}
	return out
}
