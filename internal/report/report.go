// Package report renders a self-contained HTML dossier for one scheduling
// problem: the a-priori analysis, a comparison table across the whole
// algorithm ladder (greedy policies, local search, approximate and exact
// branch-and-bound), inline Gantt charts of the notable schedules, and the
// dispatch robustness profile. One file, no external assets — the artifact
// an engineer attaches to a design review.
package report

import (
	"fmt"
	"html"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/edf"
	"repro/internal/gantt"
	"repro/internal/improve"
	"repro/internal/listsched"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Options configures report generation.
type Options struct {
	// Budget is the exact-search allowance (default 5s).
	Budget time.Duration

	// Title heads the document (default "scheduling report").
	Title string

	// JitterRuns enables the dispatch robustness section when > 0.
	JitterRuns int
}

// row is one algorithm's line in the comparison table.
type row struct {
	name     string
	lmax     taskgraph.Time
	makespan taskgraph.Time
	optimal  string
	vertices int64
	schedule *sched.Schedule
}

// Build runs the ladder and renders the HTML document.
func Build(g *taskgraph.Graph, p platform.Platform, opts Options) (string, error) {
	if opts.Budget <= 0 {
		opts.Budget = 5 * time.Second
	}
	if opts.Title == "" {
		opts.Title = "scheduling report"
	}

	rep, err := analysis.Analyze(g, p)
	if err != nil {
		return "", err
	}

	var rows []row

	// Greedy ladder.
	for _, pol := range listsched.Policies() {
		res, err := listsched.Schedule(g, p, pol)
		if err != nil {
			return "", err
		}
		rows = append(rows, row{name: "list " + pol.String(), lmax: res.Lmax,
			makespan: res.Schedule.Makespan(), optimal: "—", schedule: res.Schedule})
	}

	// Local search on the EDF schedule.
	edfRes, err := edf.Schedule(g, p)
	if err != nil {
		return "", err
	}
	imp, err := improve.Improve(edfRes.Schedule, improve.Options{Kicks: 3, Seed: 1})
	if err != nil {
		return "", err
	}
	rows = append(rows, row{name: "EDF + local search", lmax: imp.Cost,
		makespan: imp.Schedule.Makespan(), optimal: "—", schedule: imp.Schedule})

	// Approximate B&B.
	for _, br := range []core.BranchingRule{core.BranchDF, core.BranchBF1} {
		res, err := core.Solve(g, p, core.Params{Branching: br,
			Resources: core.ResourceBounds{TimeLimit: opts.Budget}})
		if err != nil {
			return "", err
		}
		rows = append(rows, row{name: "B&B " + br.String(), lmax: res.Cost,
			makespan: res.Schedule.Makespan(), optimal: "approx",
			vertices: res.Stats.Generated, schedule: res.Schedule})
	}

	// Exact B&B.
	exact, err := core.Solve(g, p, core.Params{
		GlobalLowerBound: rep.Lower, UseGlobalBound: true,
		Resources: core.ResourceBounds{TimeLimit: opts.Budget}})
	if err != nil {
		return "", err
	}
	status := "TIMED OUT (best so far)"
	if exact.Optimal {
		status = "proven optimal"
	}
	rows = append(rows, row{name: "B&B BFn (exact)", lmax: exact.Cost,
		makespan: exact.Schedule.Makespan(), optimal: status,
		vertices: exact.Stats.Generated, schedule: exact.Schedule})

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(opts.Title))
	b.WriteString(`<style>
body { font-family: sans-serif; max-width: 72em; margin: 2em auto; color: #222; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #bbb; padding: 4px 10px; text-align: right; }
th { background: #f0f0f0; } td:first-child, th:first-child { text-align: left; }
.ok { color: #06662a; font-weight: bold; } .warn { color: #8a6d00; }
pre { background: #f7f7f7; padding: 8px; overflow-x: auto; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(opts.Title))
	fmt.Fprintf(&b, "<p>%d tasks, %d arcs, depth %d, parallelism %.2f — %d processors (shared bus)</p>\n",
		g.NumTasks(), g.NumEdges(), g.Depth(), g.Parallelism(), p.M)

	// Analysis section.
	b.WriteString("<h2>A-priori analysis</h2>\n<table><tr><th>quantity</th><th>value</th></tr>\n")
	fmt.Fprintf(&b, "<tr><td>total work</td><td>%d</td></tr>\n", rep.TotalWork)
	fmt.Fprintf(&b, "<tr><td>critical path</td><td>%d</td></tr>\n", rep.CriticalPath)
	fmt.Fprintf(&b, "<tr><td>utilization</td><td>%.0f%%</td></tr>\n", rep.Utilization*100)
	fmt.Fprintf(&b, "<tr><td>demand lower bound on Lmax</td><td>%d (interval [%d, %d])</td></tr>\n",
		rep.DemandLmax, rep.CriticalInterval[0], rep.CriticalInterval[1])
	fmt.Fprintf(&b, "<tr><td>path lower bound on Lmax</td><td>%d</td></tr>\n", rep.PathLmax)
	fmt.Fprintf(&b, "<tr><td>certified bound</td><td><b>%d</b></td></tr>\n</table>\n", rep.Lower)
	if rep.Infeasible() {
		fmt.Fprintf(&b, "<p class=\"warn\">Certified infeasible: every schedule misses a deadline by at least %d ticks.</p>\n", rep.Lower)
	}

	// Comparison table.
	b.WriteString("<h2>Algorithm ladder</h2>\n<table><tr><th>algorithm</th><th>Lmax</th><th>makespan</th><th>vertices</th><th>status</th></tr>\n")
	for _, r := range rows {
		verts := "—"
		if r.vertices > 0 {
			verts = fmt.Sprintf("%d", r.vertices)
		}
		cls := ""
		if r.lmax == exact.Cost && strings.Contains(r.optimal, "optimal") {
			cls = ` class="ok"`
		}
		fmt.Fprintf(&b, "<tr%s><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td></tr>\n",
			cls, html.EscapeString(r.name), r.lmax, r.makespan, verts, html.EscapeString(r.optimal))
	}
	fmt.Fprintf(&b, "</table>\n<p>Certified gap of the final schedule: <b>%d</b> (cost %d vs bound %d).</p>\n",
		exact.Cost-rep.Lower, exact.Cost, rep.Lower)

	// Gantt charts: best greedy and the exact result.
	b.WriteString("<h2>Schedules</h2>\n")
	b.WriteString("<h3>Best schedule found</h3>\n")
	b.WriteString(gantt.SVG(exact.Schedule))
	b.WriteString("\n<h3>EDF baseline</h3>\n")
	b.WriteString(gantt.SVG(edfRes.Schedule))

	// Dispatch robustness.
	if opts.JitterRuns > 0 {
		b.WriteString("\n<h2>Dispatch robustness (execution-time jitter)</h2>\n")
		b.WriteString("<table><tr><th>discipline</th><th>jitter floor</th><th>mean Lmax</th><th>worst Lmax</th><th>mean makespan</th></tr>\n")
		for _, d := range []dispatch.Discipline{dispatch.TableDriven, dispatch.WorkConserving} {
			for _, frac := range []float64{1.0, 0.7, 0.4} {
				st, err := dispatch.Sweep(exact.Schedule, d, frac, opts.JitterRuns, 1)
				if err != nil {
					return "", err
				}
				fmt.Fprintf(&b, "<tr><td>%s</td><td>%.0f%% of WCET</td><td>%.1f</td><td>%d</td><td>%.1f</td></tr>\n",
					d, frac*100, st.MeanLmax, st.WorstLmax, st.MeanMakespan)
			}
		}
		b.WriteString("</table>\n")
	}

	// The task graph itself for reference.
	b.WriteString("\n<h2>Task graph (Graphviz DOT)</h2>\n<pre>")
	b.WriteString(html.EscapeString(g.DOT()))
	b.WriteString("</pre>\n</body></html>\n")
	return b.String(), nil
}
