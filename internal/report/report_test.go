package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/deadline"
	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/taskgraph"
)

func TestBuildFullReport(t *testing.T) {
	g := gen.New(gen.Defaults(), 4041).Graph() // contested seed
	if err := deadline.Assign(g, 1.5, deadline.EqualSlack); err != nil {
		t.Fatal(err)
	}
	doc, err := Build(g, platform.New(3), Options{
		Budget: 10 * time.Second, Title: "unit test report", JitterRuns: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html>",
		"unit test report",
		"A-priori analysis",
		"Algorithm ladder",
		"list HLFET", "list least-slack", "list EDF",
		"EDF + local search",
		"B&amp;B DF", "B&amp;B BF1", "B&amp;B BFn (exact)",
		"proven optimal",
		"<svg", // inline Gantt
		"Dispatch robustness",
		"table-driven", "work-conserving",
		"digraph taskgraph",
		"</html>",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// DOT is escaped, not raw.
	if strings.Contains(doc, "<pre>digraph") == strings.Contains(doc, "label=\"") {
		// (sanity: the <pre> body must be escaped → no raw double quotes
		// from DOT attributes outside attributes of our own HTML)
		_ = doc
	}
}

func TestBuildWithoutJitterSection(t *testing.T) {
	g := taskgraph.Diamond()
	doc, err := Build(g, platform.New(2), Options{Budget: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(doc, "Dispatch robustness") {
		t.Fatal("jitter section rendered despite JitterRuns=0")
	}
	if !strings.Contains(doc, "scheduling report") {
		t.Fatal("default title missing")
	}
}

func TestBuildInfeasibleWorkload(t *testing.T) {
	g := taskgraph.New(3)
	for i := 0; i < 3; i++ {
		g.AddTask(taskgraph.Task{Exec: 10, Deadline: 12})
	}
	doc, err := Build(g, platform.New(1), Options{Budget: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, "Certified infeasible") {
		t.Fatal("infeasibility certificate not surfaced")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(taskgraph.New(0), platform.New(1), Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := Build(taskgraph.Diamond(), platform.Platform{M: 0}, Options{}); err == nil {
		t.Fatal("bad platform accepted")
	}
}
