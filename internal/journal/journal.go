// Package journal is the crash-safe append-only JSONL substrate shared
// by the experiment runner (internal/exp) and the distributed fabric's
// coordinator checkpoints (internal/dist). One record is one JSON value
// on one line; every append is fsynced before it is acknowledged, so a
// record either survives a crash whole or was never acknowledged at all.
//
// The torn-tail rule makes replay deterministic: a trailing line without
// a newline, or one that no longer parses as JSON — the signature of a
// crash mid-append — is dropped AND truncated away on load, so the next
// append starts on a clean line boundary and a resumed process sees
// exactly the acknowledged prefix.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Load reads the intact records of the journal at path, truncating a
// torn tail in place. A missing file yields (nil, nil): nothing to
// resume from is not an error.
func Load(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	var records [][]byte
	intact := 0
	for intact < len(data) {
		nl := bytes.IndexByte(data[intact:], '\n')
		if nl < 0 {
			break // torn tail without newline
		}
		line := data[intact : intact+nl]
		if len(line) > 0 {
			if !json.Valid(line) {
				break // torn or corrupt line; everything after is suspect
			}
			records = append(records, append([]byte(nil), line...))
		}
		intact += nl + 1
	}
	if intact < len(data) {
		if err := os.Truncate(path, int64(intact)); err != nil {
			return nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
	}
	return records, nil
}

// Appender is the write side: open once, Append records, Close. It is
// not safe for concurrent use; callers serialize (both current users
// append under a mutex or from a single goroutine).
type Appender struct {
	path string
	f    *os.File
	size int64
}

// OpenAppend opens the journal at path for appending. With resume false
// the file is truncated first (a fresh run); with resume true appends
// continue after the existing acknowledged records — call Load first so
// a torn tail has already been cut off.
func OpenAppend(path string, resume bool) (*Appender, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // open failed half-way; nothing to report beyond err
		return nil, fmt.Errorf("journal: stat %s: %w", path, err)
	}
	return &Appender{path: path, f: f, size: st.Size()}, nil
}

// Append marshals v, writes it as one line, and fsyncs. The record is
// durable when Append returns nil.
func (a *Appender) Append(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	line = append(line, '\n')
	if _, err := a.f.Write(line); err != nil {
		return fmt.Errorf("journal: append to %s: %w", a.path, err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync %s: %w", a.path, err)
	}
	a.size += int64(len(line))
	return nil
}

// Size reports the journal's current byte size (acknowledged records
// plus any pre-existing content when opened with resume).
func (a *Appender) Size() int64 { return a.size }

// Close closes the underlying file. Further Appends fail.
func (a *Appender) Close() error {
	if a.f == nil {
		return nil
	}
	err := a.f.Close()
	a.f = nil
	return err
}
