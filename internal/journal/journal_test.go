package journal

import (
	"os"
	"path/filepath"
	"testing"
)

type rec struct {
	K string `json:"k"`
	N int    `json:"n"`
}

func TestAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	a, err := OpenAppend(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Append(rec{K: "r", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if a.Size() == 0 {
		t.Fatal("size not tracked")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	records, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 {
		t.Fatalf("got %d records, want 5", len(records))
	}
}

func TestLoadMissingFile(t *testing.T) {
	records, err := Load(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || records != nil {
		t.Fatalf("missing file: got %v records, err %v", records, err)
	}
}

// TestTornTailTruncated: a crash mid-append leaves a partial final line;
// Load must drop it, truncate the file, and leave appends resumable on a
// clean boundary.
func TestTornTailTruncated(t *testing.T) {
	for _, tail := range []string{`{"k":"torn","n":`, `{"k":"torn"`, "\xff\xfe garbage\n", `{"k":"no-newline","n":9}`} {
		path := filepath.Join(t.TempDir(), "j.jsonl")
		a, err := OpenAppend(path, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Append(rec{K: "ok", N: 1}); err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(tail); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		records, err := Load(path)
		if err != nil {
			t.Fatalf("tail %q: %v", tail, err)
		}
		if len(records) != 1 {
			t.Fatalf("tail %q: got %d records, want the 1 intact one", tail, len(records))
		}

		// The torn bytes are gone: appending resumes on a clean boundary.
		a, err = OpenAppend(path, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Append(rec{K: "ok", N: 2}); err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		records, err = Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(records) != 2 {
			t.Fatalf("tail %q: after resume append got %d records, want 2", tail, len(records))
		}
	}
}
