package gen

import (
	"testing"

	"repro/internal/taskgraph"
)

func TestPeriodicTaskSetBasics(t *testing.T) {
	g := New(Defaults(), 5)
	for i := 0; i < 100; i++ {
		ts, err := g.PeriodicTaskSet(DefaultPeriodic())
		if err != nil {
			t.Fatal(err)
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		if ts.NumTasks() != 5 || ts.NumEdges() != 0 {
			t.Fatalf("draw %d: shape %d/%d", i, ts.NumTasks(), ts.NumEdges())
		}
		for _, task := range ts.Tasks() {
			if task.Period != 20 && task.Period != 40 && task.Period != 80 {
				t.Fatalf("draw %d: period %d off menu", i, task.Period)
			}
			if task.Exec < 1 || task.Exec > task.Period {
				t.Fatalf("draw %d: exec %d outside (0, %d]", i, task.Exec, task.Period)
			}
			if task.Deadline > task.Period {
				t.Fatalf("draw %d: deadline exceeds period", i)
			}
		}
	}
}

func TestPeriodicUtilizationNearTarget(t *testing.T) {
	// UUniFast + integer rounding: the MEAN realized utilization over many
	// draws must be close to the target.
	g := New(Defaults(), 7)
	p := DefaultPeriodic()
	p.TotalUtil = 0.7
	var sum float64
	const draws = 300
	for i := 0; i < draws; i++ {
		ts, err := g.PeriodicTaskSet(p)
		if err != nil {
			t.Fatal(err)
		}
		sum += Utilization(ts)
	}
	mean := sum / draws
	if mean < 0.65 || mean > 0.78 {
		t.Fatalf("mean realized utilization %v, target 0.7", mean)
	}
}

func TestPeriodicConstrainedDeadlinesAndPhases(t *testing.T) {
	g := New(Defaults(), 9)
	p := DefaultPeriodic()
	p.DeadlineFrac = 0.5
	p.MaxPhaseFrac = 0.5
	sawPhase := false
	for i := 0; i < 50; i++ {
		ts, err := g.PeriodicTaskSet(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range ts.Tasks() {
			if task.Deadline > task.Period/2 && task.Deadline != task.Exec {
				t.Fatalf("deadline %d above frac 0.5 of period %d", task.Deadline, task.Period)
			}
			if task.Phase > 0 {
				sawPhase = true
			}
			if task.Phase >= task.Period/2+1 {
				t.Fatalf("phase %d above frac 0.5 of period %d", task.Phase, task.Period)
			}
		}
	}
	if !sawPhase {
		t.Fatal("phasing enabled but never drawn")
	}
}

func TestPeriodicParamsValidate(t *testing.T) {
	bad := []func(*PeriodicParams){
		func(p *PeriodicParams) { p.N = 0 },
		func(p *PeriodicParams) { p.TotalUtil = 0 },
		func(p *PeriodicParams) { p.Periods = nil },
		func(p *PeriodicParams) { p.Periods = []taskgraph.Time{1} },
		func(p *PeriodicParams) { p.DeadlineFrac = 0 },
		func(p *PeriodicParams) { p.DeadlineFrac = 1.5 },
		func(p *PeriodicParams) { p.MaxPhaseFrac = -0.1 },
	}
	for i, mut := range bad {
		p := DefaultPeriodic()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad periodic params #%d accepted", i)
		}
	}
}

func TestPeriodicDeterministic(t *testing.T) {
	a, _ := New(Defaults(), 3).PeriodicTaskSet(DefaultPeriodic())
	b, _ := New(Defaults(), 3).PeriodicTaskSet(DefaultPeriodic())
	for i := 0; i < a.NumTasks(); i++ {
		if a.Task(taskgraph.TaskID(i)) != b.Task(taskgraph.TaskID(i)) {
			t.Fatal("same seed produced different periodic sets")
		}
	}
}
