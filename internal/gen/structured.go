package gen

import (
	"fmt"

	"repro/internal/taskgraph"
)

// SPParams describes a random series-parallel task graph: the recursive
// series/parallel composition structure of DSP dataflow and fork-join
// programs (and the structured counterpoint to the layered §4.1 graphs —
// maximal transitive-reduction-free nesting instead of level-local edges).
type SPParams struct {
	// Depth is the recursion depth; 0 yields a single task.
	Depth int

	// FanoutMin/FanoutMax bound the branch count of parallel compositions.
	FanoutMin, FanoutMax int

	// SeriesBias in [0,1] is the probability of a series composition at
	// each internal node (0.5 when zero-valued inputs are normalized).
	SeriesBias float64

	// MeanExec/Jitter/CCR as in Params.
	MeanExec taskgraph.Time
	Jitter   float64
	CCR      float64
}

// DefaultSP returns a moderate series-parallel specification matching the
// paper's execution-time and CCR distributions.
func DefaultSP() SPParams {
	return SPParams{
		Depth: 3, FanoutMin: 2, FanoutMax: 3, SeriesBias: 0.5,
		MeanExec: 20, Jitter: 0.99, CCR: 1.0,
	}
}

// Validate reports whether the specification is generatable.
func (p SPParams) Validate() error {
	switch {
	case p.Depth < 0:
		return fmt.Errorf("gen: negative SP depth %d", p.Depth)
	case p.FanoutMin < 2 || p.FanoutMax < p.FanoutMin:
		return fmt.Errorf("gen: bad SP fanout range [%d,%d]", p.FanoutMin, p.FanoutMax)
	case p.MeanExec < 1:
		return fmt.Errorf("gen: SP mean exec %d < 1", p.MeanExec)
	case p.Jitter < 0 || p.Jitter >= 1:
		return fmt.Errorf("gen: SP jitter %v outside [0,1)", p.Jitter)
	case p.CCR < 0:
		return fmt.Errorf("gen: negative SP CCR %v", p.CCR)
	case p.SeriesBias < 0 || p.SeriesBias > 1:
		return fmt.Errorf("gen: SP series bias %v outside [0,1]", p.SeriesBias)
	}
	return nil
}

// SeriesParallel draws one random series-parallel graph with a single
// input task and a single output task. Deadlines are wide placeholders, as
// with Graph; run deadline.Assign afterwards.
func (g *Generator) SeriesParallel(p SPParams) (*taskgraph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bias := p.SeriesBias
	if bias == 0 {
		bias = 0.5
	}
	tg := taskgraph.New(1 << uint(p.Depth))
	horizon := taskgraph.Time(1<<uint(p.Depth+2)) * p.MeanExec * 8

	meanMsg := taskgraph.Time(float64(p.MeanExec) * p.CCR)
	msg := func() taskgraph.Time {
		if meanMsg == 0 {
			return 0
		}
		return uniformAround(g.rng, meanMsg, p.Jitter)
	}
	newTask := func() taskgraph.TaskID {
		id := tg.AddTask(taskgraph.Task{
			Exec:     uniformAround(g.rng, p.MeanExec, p.Jitter),
			Deadline: horizon,
		})
		tg.TaskPtr(id).Name = fmt.Sprintf("sp%d", id)
		return id
	}

	// build returns the fragment's (source, sink).
	var build func(depth int) (taskgraph.TaskID, taskgraph.TaskID)
	build = func(depth int) (taskgraph.TaskID, taskgraph.TaskID) {
		if depth == 0 {
			id := newTask()
			return id, id
		}
		if g.rng.Float64() < bias {
			// Series: left then right.
			ls, lk := build(depth - 1)
			rs, rk := build(depth - 1)
			tg.MustAddEdge(lk, rs, msg())
			return ls, rk
		}
		// Parallel: fork → k branches → join.
		fork := newTask()
		join := newTask()
		k := p.FanoutMin + g.rng.Intn(p.FanoutMax-p.FanoutMin+1)
		for i := 0; i < k; i++ {
			bs, bk := build(depth - 1)
			tg.MustAddEdge(fork, bs, msg())
			tg.MustAddEdge(bk, join, msg())
		}
		return fork, join
	}
	build(p.Depth)
	if err := tg.Validate(); err != nil {
		return nil, fmt.Errorf("gen: series-parallel construction broke validity: %w", err)
	}
	return tg, nil
}
