// Package gen implements the random task-graph generator of the paper's
// §4.1. A generated graph has
//
//   - a task count drawn uniformly from [NMin, NMax] (paper: 12–16);
//   - a depth (number of levels) drawn uniformly from [DepthMin, DepthMax]
//     (paper: 8–12), with every level holding at least one task;
//   - task execution times drawn uniformly around MeanExec (paper: 20) with
//     a relative jitter of ±ExecJitter (paper: ±99%);
//   - per-task predecessor counts drawn uniformly from [DegreeMin,
//     DegreeMax] (paper: 1–3), connecting each task to the previous level;
//   - message sizes drawn so the communication-to-computation ratio (CCR) —
//     average message cost over average execution time on a unit-delay bus —
//     equals the CCR parameter (paper: 1.0).
//
// Degree bounds are best-effort, exactly as in any layered random-DAG
// construction: predecessors are preferentially drawn from previous-level
// tasks that still have spare out-degree, and a final pass gives every
// non-last-level task at least one successor. In-degree can exceed
// DegreeMax only through that fixup pass, which is rare at the paper's
// parameters.
//
// Generated graphs carry wide-open placeholder deadlines; run
// deadline.Assign to derive the paper's per-task execution windows from the
// end-to-end laxity ratio.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/taskgraph"
)

// Params collects the workload knobs of §4.1. The zero value is invalid;
// start from Defaults.
type Params struct {
	// NMin, NMax bound the task count (inclusive).
	NMin, NMax int

	// DepthMin, DepthMax bound the number of levels (inclusive). A draw
	// exceeding the task count is clamped to it.
	DepthMin, DepthMax int

	// MeanExec is the mean worst-case execution time.
	MeanExec taskgraph.Time

	// ExecJitter is the maximum relative deviation of execution times (and
	// message sizes) from their mean, in [0, 1). The paper uses 0.99.
	ExecJitter float64

	// DegreeMin, DegreeMax bound the per-task predecessor draw (inclusive).
	DegreeMin, DegreeMax int

	// CCR is the communication-to-computation cost ratio: mean message size
	// × nominal bus delay (1) divided by mean execution time. CCR of 0
	// produces pure precedence arcs with no data.
	CCR float64

	// Laxity is the ratio of each end-to-end deadline to the accumulated
	// workload it covers (paper: 1.5). The generator itself does not use
	// it; it is carried here so one Params value fully describes a workload
	// and is consumed by deadline.Assign.
	Laxity float64
}

// Defaults returns the paper's §4.1 workload parameters.
func Defaults() Params {
	return Params{
		NMin: 12, NMax: 16,
		DepthMin: 8, DepthMax: 12,
		MeanExec:   20,
		ExecJitter: 0.99,
		DegreeMin:  1, DegreeMax: 3,
		CCR:    1.0,
		Laxity: 1.5,
	}
}

// Validate reports whether the parameters describe a generatable workload.
func (p Params) Validate() error {
	switch {
	case p.NMin < 1 || p.NMax < p.NMin:
		return fmt.Errorf("gen: bad task count range [%d,%d]", p.NMin, p.NMax)
	case p.DepthMin < 1 || p.DepthMax < p.DepthMin:
		return fmt.Errorf("gen: bad depth range [%d,%d]", p.DepthMin, p.DepthMax)
	case p.MeanExec < 1:
		return fmt.Errorf("gen: mean execution time %d < 1", p.MeanExec)
	case p.ExecJitter < 0 || p.ExecJitter >= 1:
		return fmt.Errorf("gen: jitter %v outside [0,1)", p.ExecJitter)
	case p.DegreeMin < 1 || p.DegreeMax < p.DegreeMin:
		return fmt.Errorf("gen: bad degree range [%d,%d]", p.DegreeMin, p.DegreeMax)
	case p.CCR < 0:
		return fmt.Errorf("gen: negative CCR %v", p.CCR)
	case p.Laxity <= 0:
		return fmt.Errorf("gen: non-positive laxity %v", p.Laxity)
	}
	return nil
}

// Generator produces random task graphs from a Params and a seed. Every
// graph is a deterministic function of (Params, seed, draw index): two
// generators built with the same arguments yield identical graph sequences.
type Generator struct {
	p   Params
	rng *rand.Rand
}

// New returns a generator for the given parameters. It panics on invalid
// parameters; validate user-supplied parameters with Params.Validate first.
func New(p Params, seed int64) *Generator {
	if err := p.Validate(); err != nil {
		panic(fmt.Errorf("gen: New with invalid parameters: %w", err))
	}
	return &Generator{p: p, rng: rand.New(rand.NewSource(seed))}
}

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.p }

// uniformAround draws a positive integer uniformly from
// [mean(1−jitter), mean(1+jitter)], clamped below at 1.
func uniformAround(rng *rand.Rand, mean taskgraph.Time, jitter float64) taskgraph.Time {
	lo := taskgraph.Time(float64(mean) * (1 - jitter))
	hi := taskgraph.Time(float64(mean) * (1 + jitter))
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + taskgraph.Time(rng.Int63n(int64(hi-lo+1)))
}

func (g *Generator) intIn(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// Graph draws one random task graph. Deadlines are wide placeholders
// (total work × 4); apply deadline.Assign for the paper's slicing.
func (g *Generator) Graph() *taskgraph.Graph {
	p := g.p
	n := g.intIn(p.NMin, p.NMax)
	depth := g.intIn(p.DepthMin, p.DepthMax)
	if depth > n {
		depth = n
	}

	// Distribute tasks over levels: one per level, remainder at random.
	levelOf := make([]int, n)
	for i := 0; i < depth; i++ {
		levelOf[i] = i
	}
	for i := depth; i < n; i++ {
		levelOf[i] = g.rng.Intn(depth)
	}
	g.rng.Shuffle(n, func(i, j int) { levelOf[i], levelOf[j] = levelOf[j], levelOf[i] })

	tg := taskgraph.New(n)
	horizon := taskgraph.Time(n) * p.MeanExec * 8 // placeholder window
	for i := 0; i < n; i++ {
		tg.AddTask(taskgraph.Task{
			Name:     fmt.Sprintf("t%d", i),
			Exec:     uniformAround(g.rng, p.MeanExec, p.ExecJitter),
			Deadline: horizon,
		})
	}

	byLevel := make([][]taskgraph.TaskID, depth)
	for i, lvl := range levelOf {
		byLevel[lvl] = append(byLevel[lvl], taskgraph.TaskID(i))
	}

	meanMsg := taskgraph.Time(float64(p.MeanExec) * p.CCR)
	msgSize := func() taskgraph.Time {
		if p.CCR == 0 || meanMsg == 0 {
			return 0
		}
		return uniformAround(g.rng, meanMsg, p.ExecJitter)
	}
	outDeg := make([]int, n)

	// Predecessors: each non-first-level task connects to 1–3 tasks on the
	// previous level, preferring those with spare out-degree.
	for lvl := 1; lvl < depth; lvl++ {
		prev := byLevel[lvl-1]
		for _, id := range byLevel[lvl] {
			k := g.intIn(p.DegreeMin, p.DegreeMax)
			if k > len(prev) {
				k = len(prev)
			}
			cands := append([]taskgraph.TaskID(nil), prev...)
			// Spare-capacity tasks first, random within each class.
			g.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
			spare := cands[:0:len(cands)]
			full := make([]taskgraph.TaskID, 0, len(cands))
			for _, c := range cands {
				if outDeg[c] < p.DegreeMax {
					spare = append(spare, c)
				} else {
					full = append(full, c)
				}
			}
			ordered := append(spare, full...)
			for _, src := range ordered[:k] {
				tg.MustAddEdge(src, id, msgSize())
				outDeg[src]++
			}
		}
	}

	// Fixup: every task not on the last level must have a successor, or the
	// drawn depth would silently shrink.
	for lvl := 0; lvl < depth-1; lvl++ {
		next := byLevel[lvl+1]
		for _, id := range byLevel[lvl] {
			if outDeg[id] == 0 {
				dst := next[g.rng.Intn(len(next))]
				tg.MustAddEdge(id, dst, msgSize())
				outDeg[id]++
			}
		}
	}

	return tg
}

// Graphs draws count independent random graphs.
func (g *Generator) Graphs(count int) []*taskgraph.Graph {
	out := make([]*taskgraph.Graph, count)
	for i := range out {
		out[i] = g.Graph()
	}
	return out
}
