package gen

import (
	"testing"

	"repro/internal/taskgraph"
)

func sporadicFixture(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.New(3)
	g.AddTask(taskgraph.Task{Exec: 2, Deadline: 10, Period: 10})
	g.AddTask(taskgraph.Task{Exec: 3, Deadline: 20, Period: 20, Phase: 5})
	g.AddTask(taskgraph.Task{Exec: 1, Deadline: 50}) // aperiodic
	return g
}

func TestReleasesStrictPeriodic(t *testing.T) {
	g := sporadicFixture(t)
	rel, err := New(Defaults(), 1).Releases(g, ReleaseParams{Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]taskgraph.Time{
		{0, 10, 20, 30},
		{5, 25},
		{0},
	}
	for id := range want {
		if len(rel[id]) != len(want[id]) {
			t.Fatalf("task %d: %v, want %v", id, rel[id], want[id])
		}
		for k := range want[id] {
			if rel[id][k] != want[id][k] {
				t.Fatalf("task %d: %v, want %v", id, rel[id], want[id])
			}
		}
	}
}

func TestReleasesSporadicSeparation(t *testing.T) {
	g := sporadicFixture(t)
	for seed := int64(0); seed < 20; seed++ {
		rel, err := New(Defaults(), seed).Releases(g, ReleaseParams{Horizon: 200, StretchFrac: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range g.Tasks() {
			if task.Period == 0 {
				continue
			}
			rs := rel[task.ID]
			for k := 1; k < len(rs); k++ {
				gap := rs[k] - rs[k-1]
				if gap < task.Period {
					t.Fatalf("seed %d task %d: gap %d below minimum inter-arrival %d",
						seed, task.ID, gap, task.Period)
				}
				if maxGap := task.Period + taskgraph.Time(0.5*float64(task.Period)); gap > maxGap {
					t.Fatalf("seed %d task %d: gap %d above stretch bound %d",
						seed, task.ID, gap, maxGap)
				}
			}
		}
	}
}

func TestReleasesJitterBounds(t *testing.T) {
	g := sporadicFixture(t)
	for seed := int64(0); seed < 20; seed++ {
		rel, err := New(Defaults(), seed).Releases(g, ReleaseParams{Horizon: 200, JitterFrac: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range g.Tasks() {
			if task.Period == 0 {
				continue
			}
			for k, r := range rel[task.ID] {
				nominal := task.ArrivalK(k + 1)
				jitter := r - nominal
				if jitter < 0 || float64(jitter) >= 0.3*float64(task.Period) {
					t.Fatalf("seed %d task %d inv %d: release %d has jitter %d outside [0, %g)",
						seed, task.ID, k+1, r, jitter, 0.3*float64(task.Period))
				}
				if k > 0 && r <= rel[task.ID][k-1] {
					t.Fatalf("seed %d task %d: releases not increasing: %v", seed, task.ID, rel[task.ID])
				}
			}
		}
	}
}

func TestReleasesRejectsBadParams(t *testing.T) {
	g := sporadicFixture(t)
	gen := New(Defaults(), 1)
	bad := []ReleaseParams{
		{},                          // zero horizon
		{Horizon: 10, JitterFrac: -0.1},
		{Horizon: 10, StretchFrac: 1.5},
		{Horizon: 10, JitterFrac: 0.2, StretchFrac: 0.2}, // exclusive models
	}
	for i, p := range bad {
		if _, err := gen.Releases(g, p); err == nil {
			t.Errorf("case %d: accepted %+v", i, p)
		}
	}
}
