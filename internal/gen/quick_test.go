package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/deadline"
)

// TestQuickGeneratedGraphInvariants drives the generator with arbitrary
// seeds and parameter perturbations and checks the structural contract.
func TestQuickGeneratedGraphInvariants(t *testing.T) {
	f := func(seed int64, nSel, dSel, ccrSel uint8) bool {
		p := Defaults()
		p.NMin = 4 + int(nSel%8)
		p.NMax = p.NMin + int(dSel%6)
		p.DepthMin = 2 + int(dSel%4)
		p.DepthMax = p.DepthMin + int(nSel%5)
		p.CCR = float64(ccrSel%40) / 10.0
		if p.Validate() != nil {
			return true // not a generatable combination; nothing to check
		}
		g := New(p, seed).Graph()
		if g.Validate() != nil {
			return false
		}
		if g.NumTasks() < p.NMin || g.NumTasks() > p.NMax {
			return false
		}
		wantDepth := p.DepthMax
		if g.NumTasks() < wantDepth {
			wantDepth = g.NumTasks()
		}
		if g.Depth() < min(p.DepthMin, g.NumTasks()) || g.Depth() > wantDepth {
			return false
		}
		// Non-last-level tasks must have successors; non-first-level tasks
		// must have predecessors.
		for _, task := range g.Tasks() {
			lvl := g.Level(task.ID)
			if lvl > 0 && g.InDegree(task.ID) == 0 {
				return false
			}
			if lvl < g.Depth()-1 && g.OutDegree(task.ID) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSlicingInvariants: any generated graph under any laxity in
// (0, 4] and either policy yields structurally sound windows.
func TestQuickSlicingInvariants(t *testing.T) {
	f := func(seed int64, laxSel uint8, polSel bool) bool {
		lax := 0.25 + float64(laxSel%16)*0.25
		pol := deadline.EqualSlack
		if polSel {
			pol = deadline.Proportional
		}
		g := New(Defaults(), seed).Graph()
		if err := deadline.Assign(g, lax, pol); err != nil {
			return false
		}
		if err := deadline.Check(g); err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
