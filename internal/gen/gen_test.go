package gen

import (
	"encoding/json"
	"testing"
)

func TestDefaultsMatchPaper(t *testing.T) {
	p := Defaults()
	if p.NMin != 12 || p.NMax != 16 {
		t.Fatalf("task count range [%d,%d], paper uses [12,16]", p.NMin, p.NMax)
	}
	if p.DepthMin != 8 || p.DepthMax != 12 {
		t.Fatalf("depth range [%d,%d], paper uses [8,12]", p.DepthMin, p.DepthMax)
	}
	if p.MeanExec != 20 || p.ExecJitter != 0.99 {
		t.Fatalf("exec distribution (%d, %v), paper uses (20, 0.99)", p.MeanExec, p.ExecJitter)
	}
	if p.DegreeMin != 1 || p.DegreeMax != 3 {
		t.Fatalf("degree range [%d,%d], paper uses [1,3]", p.DegreeMin, p.DegreeMax)
	}
	if p.CCR != 1.0 || p.Laxity != 1.5 {
		t.Fatalf("CCR=%v laxity=%v, paper uses 1.0 and 1.5", p.CCR, p.Laxity)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.NMin = 0 },
		func(p *Params) { p.NMax = p.NMin - 1 },
		func(p *Params) { p.DepthMin = 0 },
		func(p *Params) { p.DepthMax = p.DepthMin - 1 },
		func(p *Params) { p.MeanExec = 0 },
		func(p *Params) { p.ExecJitter = 1.0 },
		func(p *Params) { p.ExecJitter = -0.1 },
		func(p *Params) { p.DegreeMin = 0 },
		func(p *Params) { p.DegreeMax = 0 },
		func(p *Params) { p.CCR = -1 },
		func(p *Params) { p.Laxity = 0 },
	}
	for i, mut := range bad {
		p := Defaults()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation #%d accepted: %+v", i, p)
		}
	}
}

func TestGeneratedGraphsMeetSpec(t *testing.T) {
	p := Defaults()
	g := New(p, 1)
	for i := 0; i < 200; i++ {
		tg := g.Graph()
		if err := tg.Validate(); err != nil {
			t.Fatalf("graph %d invalid: %v", i, err)
		}
		n := tg.NumTasks()
		if n < p.NMin || n > p.NMax {
			t.Fatalf("graph %d: %d tasks outside [%d,%d]", i, n, p.NMin, p.NMax)
		}
		d := tg.Depth()
		if d < p.DepthMin || d > p.DepthMax {
			t.Fatalf("graph %d: depth %d outside [%d,%d]", i, d, p.DepthMin, p.DepthMax)
		}
		for _, task := range tg.Tasks() {
			if task.Exec < 1 || task.Exec > 39 {
				t.Fatalf("graph %d: exec %d outside [1,39] (mean 20 ±99%%)", i, task.Exec)
			}
		}
		// Every non-input task has 1..DegreeMax predecessors drawn from the
		// previous level; the fixup can only ADD arcs, so in-degree >= 1 for
		// every task above level 0 and every non-last-level task has a
		// successor.
		for _, task := range tg.Tasks() {
			lvl := tg.Level(task.ID)
			if lvl > 0 && tg.InDegree(task.ID) < 1 {
				t.Fatalf("graph %d: task %d at level %d has no predecessors", i, task.ID, lvl)
			}
			if lvl < d-1 && tg.OutDegree(task.ID) < 1 {
				t.Fatalf("graph %d: task %d at level %d has no successors", i, task.ID, lvl)
			}
		}
		for _, c := range tg.Channels() {
			if c.Size < 1 || c.Size > 39 {
				t.Fatalf("graph %d: message size %d outside [1,39] at CCR=1", i, c.Size)
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p := Defaults()
	a, b := New(p, 77), New(p, 77)
	for i := 0; i < 20; i++ {
		ga, err1 := json.Marshal(a.Graph())
		gb, err2 := json.Marshal(b.Graph())
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if string(ga) != string(gb) {
			t.Fatalf("draw %d differs between same-seed generators", i)
		}
	}
	c := New(p, 78)
	gc, _ := json.Marshal(c.Graph())
	a2 := New(p, 77)
	ga, _ := json.Marshal(a2.Graph())
	if string(gc) == string(ga) {
		t.Fatal("different seeds produced identical first draws")
	}
}

func TestExecTimeDistribution(t *testing.T) {
	// Mean over many draws must be close to MeanExec (law of large numbers;
	// uniform on [1,39] has mean 20, stderr ≈ 11/√N).
	p := Defaults()
	g := New(p, 5)
	var sum, count int64
	for i := 0; i < 300; i++ {
		for _, task := range g.Graph().Tasks() {
			sum += int64(task.Exec)
			count++
		}
	}
	mean := float64(sum) / float64(count)
	if mean < 19 || mean > 21 {
		t.Fatalf("empirical mean exec %v over %d draws, want ≈20", mean, count)
	}
}

func TestCCRScalesMessageSizes(t *testing.T) {
	for _, ccr := range []float64{0.1, 0.5, 2.0} {
		p := Defaults()
		p.CCR = ccr
		g := New(p, 9)
		var sum, count int64
		for i := 0; i < 200; i++ {
			for _, c := range g.Graph().Channels() {
				sum += int64(c.Size)
				count++
			}
		}
		mean := float64(sum) / float64(count)
		want := 20 * ccr
		if mean < want*0.85-1 || mean > want*1.15+1 {
			t.Fatalf("CCR=%v: empirical mean message %v, want ≈%v", ccr, mean, want)
		}
	}
}

func TestZeroCCRMeansNoData(t *testing.T) {
	p := Defaults()
	p.CCR = 0
	g := New(p, 3)
	for i := 0; i < 50; i++ {
		for _, c := range g.Graph().Channels() {
			if c.Size != 0 {
				t.Fatalf("CCR=0 produced message of size %d", c.Size)
			}
		}
	}
}

func TestDegreeBoundsBestEffort(t *testing.T) {
	// At the paper's parameters the out-degree cap is respected in the vast
	// majority of cases; measure the violation rate rather than assert zero.
	p := Defaults()
	g := New(p, 11)
	var over, total int
	for i := 0; i < 200; i++ {
		tg := g.Graph()
		for _, task := range tg.Tasks() {
			total++
			if tg.OutDegree(task.ID) > p.DegreeMax {
				over++
			}
		}
	}
	if rate := float64(over) / float64(total); rate > 0.05 {
		t.Fatalf("out-degree cap exceeded for %.1f%% of tasks, want <5%%", rate*100)
	}
}

func TestDepthClampedToTaskCount(t *testing.T) {
	p := Defaults()
	p.NMin, p.NMax = 3, 3
	p.DepthMin, p.DepthMax = 8, 12
	g := New(p, 2)
	tg := g.Graph()
	if tg.NumTasks() != 3 || tg.Depth() != 3 {
		t.Fatalf("n=%d depth=%d, want both 3", tg.NumTasks(), tg.Depth())
	}
}

func TestGraphsCount(t *testing.T) {
	g := New(Defaults(), 1)
	gs := g.Graphs(7)
	if len(gs) != 7 {
		t.Fatalf("Graphs(7) returned %d", len(gs))
	}
}

func TestNewPanicsOnInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid params did not panic")
		}
	}()
	New(Params{}, 1)
}
