package gen

import (
	"fmt"

	"repro/internal/taskgraph"
)

// ReleaseParams describes how concrete invocation release times deviate
// from strict periodicity over a finite horizon. Two classic real-time
// arrival models are covered:
//
//   - jittered periodic: invocation k of task i is released at
//     a_i^k + U[0, JitterFrac·T_i) — the nominal periodic arrival plus a
//     bounded random release jitter;
//   - sporadic: T_i is only the MINIMUM inter-arrival time, and each gap
//     stretches to T_i + U[0, StretchFrac·T_i).
//
// Setting both fractions to zero reproduces the strict periodic releases
// of periodic.Unroll exactly. The result is a plain per-task slice of
// release times — deliberately a neutral representation, so the generator
// and its consumer (periodic.UnrollReleases) need no dependency on one
// another.
type ReleaseParams struct {
	// Horizon is the plan length: releases strictly before Horizon are
	// generated. Must be positive; one hyperperiod is the natural choice.
	Horizon taskgraph.Time

	// JitterFrac bounds the per-invocation release jitter to
	// [0, JitterFrac·T_i), in [0, 1]. Mutually exclusive with
	// StretchFrac.
	JitterFrac float64

	// StretchFrac makes arrivals sporadic: inter-arrival times are drawn
	// from [T_i, (1+StretchFrac)·T_i). In [0, 1]. Mutually exclusive with
	// JitterFrac.
	StretchFrac float64
}

// Validate reports whether the parameters describe a generatable plan.
func (p ReleaseParams) Validate() error {
	switch {
	case p.Horizon < 1:
		return fmt.Errorf("gen: release horizon %d < 1", p.Horizon)
	case p.JitterFrac < 0 || p.JitterFrac > 1:
		return fmt.Errorf("gen: jitter fraction %v outside [0,1]", p.JitterFrac)
	case p.StretchFrac < 0 || p.StretchFrac > 1:
		return fmt.Errorf("gen: stretch fraction %v outside [0,1]", p.StretchFrac)
	case p.JitterFrac > 0 && p.StretchFrac > 0:
		return fmt.Errorf("gen: jitter and stretch are mutually exclusive arrival models")
	}
	return nil
}

// Releases draws one concrete release plan for the periodic tasks of g:
// releases[i] lists the absolute release times of task i's invocations
// whose NOMINAL arrival lies in [φ_i, Horizon), in increasing order (a
// jittered release itself can slip past the horizon by its jitter). Aperiodic tasks (Period 0)
// release exactly once, at their phase. Every plan is strictly increasing
// per task and respects the sporadic minimum-separation contract
// (consecutive releases at least T_i apart) under StretchFrac; under
// JitterFrac consecutive releases can come closer than T_i but never
// reorder.
func (g *Generator) Releases(tg *taskgraph.Graph, p ReleaseParams) ([][]taskgraph.Time, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := tg.Validate(); err != nil {
		return nil, err
	}
	releases := make([][]taskgraph.Time, tg.NumTasks())
	for _, t := range tg.Tasks() {
		if t.Period < 0 {
			return nil, fmt.Errorf("gen: task %d has negative period %d", t.ID, t.Period)
		}
		if t.Period == 0 {
			releases[t.ID] = []taskgraph.Time{t.Phase}
			continue
		}
		var rs []taskgraph.Time
		nominal := t.Phase // next strict-periodic arrival (jitter base / sporadic floor)
		for nominal < p.Horizon {
			r := nominal
			if p.JitterFrac > 0 {
				if j := int64(p.JitterFrac * float64(t.Period)); j > 0 {
					r += taskgraph.Time(g.rng.Int63n(j))
				}
				// Jitter windows of consecutive invocations may overlap
				// when JitterFrac is large; releases must still be ordered.
				if k := len(rs); k > 0 && r <= rs[k-1] {
					r = rs[k-1] + 1
				}
			}
			rs = append(rs, r)
			if p.StretchFrac > 0 {
				gap := t.Period
				if s := int64(p.StretchFrac * float64(t.Period)); s > 0 {
					gap += taskgraph.Time(g.rng.Int63n(s))
				}
				nominal = r + gap
			} else {
				nominal += t.Period
			}
		}
		if len(rs) == 0 {
			// The horizon ends before the first arrival: the task still
			// exists, as a single invocation at its phase.
			rs = []taskgraph.Time{t.Phase}
		}
		releases[t.ID] = rs
	}
	return releases, nil
}
