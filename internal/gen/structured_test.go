package gen

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestSeriesParallelBasics(t *testing.T) {
	g := New(Defaults(), 1)
	for i := 0; i < 50; i++ {
		sp, err := g.SeriesParallel(DefaultSP())
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		if len(sp.Inputs()) != 1 || len(sp.Outputs()) != 1 {
			t.Fatalf("draw %d: %d inputs, %d outputs; SP graphs have one of each",
				i, len(sp.Inputs()), len(sp.Outputs()))
		}
		// Every task lies on an input→output path (no dangling fragments).
		in, out := sp.Inputs()[0], sp.Outputs()[0]
		for _, task := range sp.Tasks() {
			if task.ID != in && !sp.HasPath(in, task.ID) {
				t.Fatalf("draw %d: task %d unreachable from the input", i, task.ID)
			}
			if task.ID != out && !sp.HasPath(task.ID, out) {
				t.Fatalf("draw %d: task %d cannot reach the output", i, task.ID)
			}
		}
	}
}

func TestSeriesParallelDepthZero(t *testing.T) {
	g := New(Defaults(), 2)
	p := DefaultSP()
	p.Depth = 0
	sp, err := g.SeriesParallel(p)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumTasks() != 1 || sp.NumEdges() != 0 {
		t.Fatalf("depth 0: %d tasks, %d edges", sp.NumTasks(), sp.NumEdges())
	}
}

func TestSeriesParallelBiasExtremes(t *testing.T) {
	g := New(Defaults(), 3)

	// Pure series: a chain of 2^depth tasks.
	p := DefaultSP()
	p.SeriesBias = 1.0
	p.Depth = 3
	sp, err := g.SeriesParallel(p)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumTasks() != 8 || sp.Depth() != 8 {
		t.Fatalf("pure series: %d tasks depth %d, want 8/8", sp.NumTasks(), sp.Depth())
	}

	// SeriesBias just above 0 forces parallel at every internal node.
	p.SeriesBias = 1e-12
	p.FanoutMin, p.FanoutMax = 2, 2
	sp, err = g.SeriesParallel(p)
	if err != nil {
		t.Fatal(err)
	}
	if w := sp.Width(); w < 2 {
		t.Fatalf("pure parallel produced width %d", w)
	}
}

func TestSeriesParallelDeterministic(t *testing.T) {
	a, _ := New(Defaults(), 9).SeriesParallel(DefaultSP())
	b, _ := New(Defaults(), 9).SeriesParallel(DefaultSP())
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("same seed produced different SP graphs")
	}
}

func TestSPParamsValidate(t *testing.T) {
	bad := []func(*SPParams){
		func(p *SPParams) { p.Depth = -1 },
		func(p *SPParams) { p.FanoutMin = 1 },
		func(p *SPParams) { p.FanoutMax = p.FanoutMin - 1 },
		func(p *SPParams) { p.MeanExec = 0 },
		func(p *SPParams) { p.Jitter = 1 },
		func(p *SPParams) { p.CCR = -0.5 },
		func(p *SPParams) { p.SeriesBias = 1.5 },
	}
	for i, mut := range bad {
		p := DefaultSP()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad SP params #%d accepted", i)
		}
	}
	g := New(Defaults(), 1)
	if _, err := g.SeriesParallel(SPParams{}); err == nil {
		t.Error("zero SPParams accepted")
	}
}

func TestQuickSeriesParallelAlwaysValid(t *testing.T) {
	f := func(seed int64, dSel, fSel uint8) bool {
		p := DefaultSP()
		p.Depth = int(dSel % 5)
		p.FanoutMin = 2
		p.FanoutMax = 2 + int(fSel%3)
		g := New(Defaults(), seed)
		sp, err := g.SeriesParallel(p)
		if err != nil {
			return false
		}
		if sp.Validate() != nil {
			return false
		}
		return len(sp.Inputs()) == 1 && len(sp.Outputs()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
