// Package dispatch studies what happens when a static schedule meets the
// run time: tasks rarely consume their full worst-case execution time, and
// the §2.2 WCET model guarantees nothing about what a dispatcher should do
// with the slack. The package implements the two classic time-driven
// dispatching disciplines for table schedules and measures their behaviour
// under execution-time jitter:
//
//	TableDriven — every task starts exactly at its scheduled s_i (the
//	    literal reading of the paper's time-driven model). Robust by
//	    construction: actual execution times <= WCET can never cause a
//	    lateness above the static Lmax, and inter-processor message
//	    timings are preserved exactly.
//	WorkConserving — each processor starts its next scheduled task as soon
//	    as the task's inputs are available (with actual finish times and
//	    nominal message costs) and the processor is free, keeping the
//	    static task order and assignment. Opportunistic: it can only
//	    start tasks EARLIER than the table, so precedence stays safe and
//	    per-task completions never exceed the table's — but downstream
//	    effects (earlier bus traffic) are outside the §2.1 nominal model,
//	    which is why avionics tables are dispatched literally.
//
// Execute returns the realized lateness per task so robustness studies can
// sweep jitter levels (see Sweep).
package dispatch

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Discipline selects the dispatcher.
type Discipline int

const (
	// TableDriven starts every task exactly at its scheduled instant.
	TableDriven Discipline = iota
	// WorkConserving starts tasks as soon as data and processor allow,
	// preserving the static order and assignment.
	WorkConserving
)

func (d Discipline) String() string {
	switch d {
	case TableDriven:
		return "table-driven"
	case WorkConserving:
		return "work-conserving"
	}
	return fmt.Sprintf("Discipline(%d)", int(d))
}

// Execution is the realized run of one task.
type Execution struct {
	Task   taskgraph.TaskID
	Proc   platform.Proc
	Start  taskgraph.Time
	Finish taskgraph.Time
	Actual taskgraph.Time // realized execution time (<= WCET)
}

// Outcome is one dispatched run of a schedule.
type Outcome struct {
	Discipline Discipline
	Lmax       taskgraph.Time
	Makespan   taskgraph.Time
	Runs       []Execution
}

// Execute dispatches the complete, valid schedule with the given actual
// execution times (actual[i] in [1, c_i]; pass nil to use the WCETs).
func Execute(s *sched.Schedule, d Discipline, actual []taskgraph.Time) (*Outcome, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("dispatch: incomplete schedule")
	}
	if err := s.Check(); err != nil {
		return nil, fmt.Errorf("dispatch: invalid schedule: %w", err)
	}
	g, p := s.Graph, s.Platform
	n := g.NumTasks()
	if actual == nil {
		actual = make([]taskgraph.Time, n)
		for _, t := range g.Tasks() {
			actual[t.ID] = t.Exec
		}
	}
	if len(actual) != n {
		return nil, fmt.Errorf("dispatch: %d actual times for %d tasks", len(actual), n)
	}
	for _, t := range g.Tasks() {
		if actual[t.ID] < 1 || actual[t.ID] > t.Exec {
			return nil, fmt.Errorf("dispatch: task %d actual time %d outside [1, %d]",
				t.ID, actual[t.ID], t.Exec)
		}
	}

	out := &Outcome{Discipline: d, Lmax: taskgraph.MinTime}
	finish := make([]taskgraph.Time, n)

	// Static per-processor order by scheduled start.
	perProc := make([][]sched.Placement, p.M)
	for _, pl := range s.Placements() {
		perProc[pl.Proc] = append(perProc[pl.Proc], pl)
	}

	switch d {
	case TableDriven:
		for _, pl := range s.Placements() {
			f := pl.Start + actual[pl.Task]
			finish[pl.Task] = f
			out.Runs = append(out.Runs, Execution{
				Task: pl.Task, Proc: pl.Proc, Start: pl.Start, Finish: f, Actual: actual[pl.Task],
			})
		}
	case WorkConserving:
		// Process tasks in a topological-compatible order across
		// processors: repeatedly dispatch the next-in-order task (per
		// processor) whose predecessors have all run.
		idx := make([]int, p.M)
		procFree := make([]taskgraph.Time, p.M)
		ran := make([]bool, n)
		remaining := n
		for remaining > 0 {
			progress := false
			for q := 0; q < p.M; q++ {
				for idx[q] < len(perProc[q]) {
					pl := perProc[q][idx[q]]
					ready := true
					start := g.Task(pl.Task).Arrival()
					for _, pred := range g.Preds(pl.Task) {
						if !ran[pred] {
							ready = false
							break
						}
						at := finish[pred] + p.CommCost(s.Proc(pred), pl.Proc, g.MessageSize(pred, pl.Task))
						if at > start {
							start = at
						}
					}
					if !ready {
						break
					}
					if procFree[q] > start {
						start = procFree[q]
					}
					f := start + actual[pl.Task]
					finish[pl.Task] = f
					procFree[q] = f
					ran[pl.Task] = true
					out.Runs = append(out.Runs, Execution{
						Task: pl.Task, Proc: pl.Proc, Start: start, Finish: f, Actual: actual[pl.Task],
					})
					idx[q]++
					remaining--
					progress = true
				}
			}
			if !progress {
				return nil, fmt.Errorf("dispatch: cross-processor order deadlock (schedule order inconsistent)")
			}
		}
	default:
		return nil, fmt.Errorf("dispatch: unknown discipline %d", d)
	}

	sort.Slice(out.Runs, func(i, j int) bool {
		if out.Runs[i].Start != out.Runs[j].Start {
			return out.Runs[i].Start < out.Runs[j].Start
		}
		return out.Runs[i].Task < out.Runs[j].Task
	})
	for _, t := range g.Tasks() {
		if finish[t.ID] > out.Makespan {
			out.Makespan = finish[t.ID]
		}
		if l := finish[t.ID] - t.AbsDeadline(); l > out.Lmax {
			out.Lmax = l
		}
	}
	return out, nil
}

// JitterStats aggregates a robustness sweep.
type JitterStats struct {
	Discipline Discipline
	JitterFrac float64 // expected fraction of WCET actually consumed
	Runs       int

	MeanLmax     float64
	WorstLmax    taskgraph.Time
	MeanMakespan float64
}

// Sweep executes the schedule repeatedly with actual execution times drawn
// uniformly from [ceil(frac·c_i), c_i] and reports aggregate lateness —
// the robustness profile of the table under early completions.
func Sweep(s *sched.Schedule, d Discipline, frac float64, runs int, seed int64) (*JitterStats, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("dispatch: jitter fraction %v outside (0,1]", frac)
	}
	if runs < 1 {
		return nil, fmt.Errorf("dispatch: runs %d < 1", runs)
	}
	rng := rand.New(rand.NewSource(seed))
	g := s.Graph
	st := &JitterStats{Discipline: d, JitterFrac: frac, Runs: runs, WorstLmax: taskgraph.MinTime}
	actual := make([]taskgraph.Time, g.NumTasks())
	for r := 0; r < runs; r++ {
		for _, t := range g.Tasks() {
			lo := taskgraph.Time(float64(t.Exec)*frac + 0.999)
			if lo < 1 {
				lo = 1
			}
			if lo > t.Exec {
				lo = t.Exec
			}
			actual[t.ID] = lo + taskgraph.Time(rng.Int63n(int64(t.Exec-lo+1)))
		}
		out, err := Execute(s, d, actual)
		if err != nil {
			return nil, err
		}
		st.MeanLmax += float64(out.Lmax)
		st.MeanMakespan += float64(out.Makespan)
		if out.Lmax > st.WorstLmax {
			st.WorstLmax = out.Lmax
		}
	}
	st.MeanLmax /= float64(runs)
	st.MeanMakespan /= float64(runs)
	return st, nil
}
