package dispatch

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// chainSchedule builds a deterministic 4-task instance: a chain 0→1→2 on
// two processors plus an independent task 3, with hand-placed starts.
//
//	p0: [0: 0..10) [2: 22..32)
//	p1: [1: 11..21) [3: 21..29)
//
// Edges 0→1 and 1→2 carry unit messages (CommCost 1 each across the bus).
func chainSchedule(t testing.TB) *sched.Schedule {
	t.Helper()
	g := taskgraph.New(0)
	for i := 0; i < 4; i++ {
		g.AddTask(taskgraph.Task{Exec: 10, Deadline: 100})
	}
	g.TaskPtr(3).Exec = 8
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	p := platform.New(2)
	s := sched.NewSchedule(g, p)
	s.Set(0, 0, 0)
	s.Set(1, 1, 0+10+p.CommCost(0, 1, 1))
	s.Set(2, 0, s.Finish(1)+p.CommCost(1, 0, 1))
	s.Set(3, 1, s.Finish(1))
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExecuteFaultyNilScenarioMatchesExecute(t *testing.T) {
	s := solved(t, 13, 3)
	want, err := Execute(s, WorkConserving, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecuteFaulty(s, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != s.Graph.NumTasks() || got.Killed != 0 || got.Unstarted != 0 {
		t.Fatalf("fault-free run lost tasks: %d/%d/%d", got.Completed, got.Killed, got.Unstarted)
	}
	if got.Lmax != want.Lmax || got.Makespan != want.Makespan {
		t.Fatalf("fault-free faulty run (Lmax %d, makespan %d) diverges from Execute (%d, %d)",
			got.Lmax, got.Makespan, want.Lmax, want.Makespan)
	}
}

func TestExecuteFaultyProcFailure(t *testing.T) {
	s := chainSchedule(t)
	// p1 dies at t=15: task 1 is in flight (killed), so 2 is blocked and 3
	// never starts on the dead processor. Task 0 completed before the fault.
	sc := &faults.Scenario{Faults: []faults.Fault{
		{Kind: faults.ProcFailure, Proc: 1, At: 15},
	}}
	out, err := ExecuteFaulty(s, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus := []TaskStatus{StatusCompleted, StatusKilled, StatusUnstarted, StatusUnstarted}
	for id, want := range wantStatus {
		if out.Status[id] != want {
			t.Fatalf("task %d: status %v, want %v (full: %v)", id, out.Status[id], want, out.Status)
		}
	}
	if out.Completed != 1 || out.Killed != 1 || out.Unstarted != 2 {
		t.Fatalf("counts completed/killed/unstarted = %d/%d/%d", out.Completed, out.Killed, out.Unstarted)
	}
	// The killed run is truncated at the fail-stop instant.
	for _, run := range out.Runs {
		if run.Task == 1 && run.Finish != 15 {
			t.Fatalf("killed task records finish %d, want the failure instant 15", run.Finish)
		}
	}
	if out.Makespan != 10 {
		t.Fatalf("makespan over survivors = %d, want 10", out.Makespan)
	}
}

func TestExecuteFaultyDeadOnArrival(t *testing.T) {
	s := chainSchedule(t)
	sc := &faults.Scenario{Faults: []faults.Fault{
		{Kind: faults.ProcFailure, Proc: 0, At: 0},
	}}
	out, err := ExecuteFaulty(s, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing on p0 ever starts; the chain is dead from the root. Only the
	// independent task 3 survives (its start slips to 0 on the idle p1).
	wantStatus := []TaskStatus{StatusUnstarted, StatusUnstarted, StatusUnstarted, StatusCompleted}
	for id, want := range wantStatus {
		if out.Status[id] != want {
			t.Fatalf("task %d: status %v, want %v", id, out.Status[id], want)
		}
	}
	if len(out.Runs) != 1 || out.Runs[0].Task != 3 {
		t.Fatalf("runs = %v", out.Runs)
	}
	if out.Runs[0].Start != 0 {
		t.Fatalf("task 3 should start as soon as p1 is free, started at %d", out.Runs[0].Start)
	}
}

func TestExecuteFaultyOverrun(t *testing.T) {
	s := chainSchedule(t)
	sc := &faults.Scenario{Faults: []faults.Fault{
		{Kind: faults.ExecOverrun, Task: 0, Extra: 4},
	}}
	out, err := ExecuteFaulty(s, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed != 4 {
		t.Fatalf("overrun alone should not lose tasks: %v", out.Status)
	}
	// Task 0 finishes at 14 instead of 10; the slip propagates down the
	// chain through realized message delivery.
	if out.Finish[0] != 14 {
		t.Fatalf("overrunning task finished at %d, want 14", out.Finish[0])
	}
	if out.Finish[1] <= s.Finish(1) {
		t.Fatalf("slip did not propagate: task 1 finished at %d (table %d)", out.Finish[1], s.Finish(1))
	}
	if out.Lmax <= s.Lmax() {
		t.Fatalf("overrun did not raise Lmax: %d <= %d", out.Lmax, s.Lmax())
	}
}

func TestExecuteFaultyOverrunIntoFailure(t *testing.T) {
	s := chainSchedule(t)
	// Task 0 overruns past p0's failure instant: the overrun converts a
	// completed task into a killed one.
	sc := &faults.Scenario{Faults: []faults.Fault{
		{Kind: faults.ExecOverrun, Task: 0, Extra: 4},
		{Kind: faults.ProcFailure, Proc: 0, At: 12},
	}}
	out, err := ExecuteFaulty(s, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status[0] != StatusKilled {
		t.Fatalf("task 0 status %v, want killed (overrun crossed the failure)", out.Status[0])
	}
	if out.Status[1] != StatusUnstarted || out.Status[2] != StatusUnstarted {
		t.Fatalf("chain after a killed root should be unstarted: %v", out.Status)
	}
	if out.Status[3] != StatusCompleted {
		t.Fatalf("independent task on the surviving processor should complete: %v", out.Status)
	}
}

func TestExecuteFaultyValidates(t *testing.T) {
	s := chainSchedule(t)
	bad := &faults.Scenario{Faults: []faults.Fault{
		{Kind: faults.ProcFailure, Proc: 9, At: 0},
	}}
	if _, err := ExecuteFaulty(s, bad, nil); err == nil {
		t.Fatal("out-of-range scenario accepted")
	}
}
