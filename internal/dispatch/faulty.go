package dispatch

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// TaskStatus is the fate of one task in a faulty run.
type TaskStatus int

const (
	// StatusCompleted: the task ran to completion before its processor (if
	// any) failed.
	StatusCompleted TaskStatus = iota
	// StatusKilled: the task was executing when its processor fail-stopped;
	// its work is lost (non-preemptive tasks cannot be checkpointed).
	StatusKilled
	// StatusUnstarted: the task never started — its processor died first,
	// or a predecessor was killed/unstarted so its inputs never arrived.
	StatusUnstarted
)

func (s TaskStatus) String() string {
	switch s {
	case StatusCompleted:
		return "completed"
	case StatusKilled:
		return "killed"
	case StatusUnstarted:
		return "unstarted"
	}
	return fmt.Sprintf("TaskStatus(%d)", int(s))
}

// FaultOutcome is one faulty dispatch of a schedule: which tasks survived,
// which were lost, and the realized timing of the survivors.
type FaultOutcome struct {
	Scenario *faults.Scenario
	Runs     []Execution // tasks that started (completed and killed), by start
	Status   []TaskStatus
	Finish   []taskgraph.Time // realized finish, valid where Status is completed

	Completed int
	Killed    int
	Unstarted int

	// Lmax and Makespan range over completed tasks only; Lmax is
	// taskgraph.MinTime when nothing completed. Lost tasks have no finish
	// time — their lateness is accounted by the recovery layer.
	Lmax     taskgraph.Time
	Makespan taskgraph.Time
}

// CompletedTasks returns the IDs of the tasks that ran to completion, in
// ID order.
func (o *FaultOutcome) CompletedTasks() []taskgraph.TaskID {
	var out []taskgraph.TaskID
	for id, st := range o.Status {
		if st == StatusCompleted {
			out = append(out, taskgraph.TaskID(id))
		}
	}
	return out
}

// ExecuteFaulty dispatches the complete, valid schedule work-conservingly
// (static order and assignment, realized data availability) while injecting
// the fault scenario: each task consumes its actual time plus any injected
// overrun, and a fail-stop processor executes nothing at or after its
// failure instant. Tasks in flight at the instant are killed; tasks whose
// inputs depend on killed or unstarted predecessors never start. The
// returned outcome is the ground truth a recovery engine starts from.
//
// actual[i] in [1, c_i] is the fault-free execution time; pass nil to use
// the WCETs.
func ExecuteFaulty(s *sched.Schedule, sc *faults.Scenario, actual []taskgraph.Time) (*FaultOutcome, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("dispatch: incomplete schedule")
	}
	if err := s.Check(); err != nil {
		return nil, fmt.Errorf("dispatch: invalid schedule: %w", err)
	}
	g, p := s.Graph, s.Platform
	n := g.NumTasks()
	if err := sc.Validate(n, p.M); err != nil {
		return nil, err
	}
	if actual == nil {
		actual = make([]taskgraph.Time, n)
		for _, t := range g.Tasks() {
			actual[t.ID] = t.Exec
		}
	}
	if len(actual) != n {
		return nil, fmt.Errorf("dispatch: %d actual times for %d tasks", len(actual), n)
	}
	for _, t := range g.Tasks() {
		if actual[t.ID] < 1 || actual[t.ID] > t.Exec {
			return nil, fmt.Errorf("dispatch: task %d actual time %d outside [1, %d]",
				t.ID, actual[t.ID], t.Exec)
		}
	}

	out := &FaultOutcome{
		Scenario: sc,
		Status:   make([]TaskStatus, n),
		Finish:   make([]taskgraph.Time, n),
		Lmax:     taskgraph.MinTime,
	}
	const (
		unresolved = -1
	)
	// fate[i]: unresolved until the dispatcher decides; then a TaskStatus.
	fate := make([]int, n)
	for i := range fate {
		fate[i] = unresolved
	}

	perProc := make([][]sched.Placement, p.M)
	for _, pl := range s.Placements() {
		perProc[pl.Proc] = append(perProc[pl.Proc], pl)
	}

	idx := make([]int, p.M)
	procFree := make([]taskgraph.Time, p.M)
	remaining := n
	for remaining > 0 {
		progress := false
		for q := 0; q < p.M; q++ {
			deadAt, dies := sc.DeadAt(platform.Proc(q))
			for idx[q] < len(perProc[q]) {
				pl := perProc[q][idx[q]]
				// Resolve predecessor fates first.
				blocked, waiting := false, false
				start := g.Task(pl.Task).Arrival()
				for _, pred := range g.Preds(pl.Task) {
					switch fate[pred] {
					case unresolved:
						waiting = true
					case int(StatusKilled), int(StatusUnstarted):
						blocked = true
					default: // completed: data ships at realized finish
						at := out.Finish[pred] + p.CommCost(s.Proc(pred), pl.Proc, g.MessageSize(pred, pl.Task))
						if at > start {
							start = at
						}
					}
				}
				if waiting && !blocked {
					break // revisit once the predecessors resolve
				}
				if blocked {
					fate[pl.Task] = int(StatusUnstarted)
					idx[q]++
					remaining--
					progress = true
					continue
				}
				if procFree[q] > start {
					start = procFree[q]
				}
				if dies && start >= deadAt {
					// The processor is dead before the task could begin.
					fate[pl.Task] = int(StatusUnstarted)
					idx[q]++
					remaining--
					progress = true
					continue
				}
				eff := actual[pl.Task] + sc.Overrun(pl.Task)
				f := start + eff
				if dies && f > deadAt {
					// In flight at the fail-stop instant: the work is lost.
					fate[pl.Task] = int(StatusKilled)
					out.Runs = append(out.Runs, Execution{
						Task: pl.Task, Proc: pl.Proc, Start: start, Finish: deadAt, Actual: eff,
					})
					procFree[q] = deadAt
					idx[q]++
					remaining--
					progress = true
					continue
				}
				fate[pl.Task] = int(StatusCompleted)
				out.Finish[pl.Task] = f
				procFree[q] = f
				out.Runs = append(out.Runs, Execution{
					Task: pl.Task, Proc: pl.Proc, Start: start, Finish: f, Actual: eff,
				})
				idx[q]++
				remaining--
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("dispatch: cross-processor order deadlock (schedule order inconsistent)")
		}
	}

	sort.Slice(out.Runs, func(i, j int) bool {
		if out.Runs[i].Start != out.Runs[j].Start {
			return out.Runs[i].Start < out.Runs[j].Start
		}
		return out.Runs[i].Task < out.Runs[j].Task
	})
	for _, t := range g.Tasks() {
		out.Status[t.ID] = TaskStatus(fate[t.ID])
		switch out.Status[t.ID] {
		case StatusCompleted:
			out.Completed++
			if out.Finish[t.ID] > out.Makespan {
				out.Makespan = out.Finish[t.ID]
			}
			if l := out.Finish[t.ID] - t.AbsDeadline(); l > out.Lmax {
				out.Lmax = l
			}
		case StatusKilled:
			out.Killed++
		case StatusUnstarted:
			out.Unstarted++
		}
	}
	return out, nil
}
