package dispatch

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/deadline"
	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

func solved(t testing.TB, seed int64, m int) *sched.Schedule {
	t.Helper()
	g := gen.New(gen.Defaults(), seed).Graph()
	if err := deadline.Assign(g, 1.5, deadline.EqualSlack); err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(g, platform.New(m), core.Params{Branching: core.BranchBF1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Schedule
}

func TestExecuteAtWCETMatchesTable(t *testing.T) {
	s := solved(t, 11, 3)
	for _, d := range []Discipline{TableDriven, WorkConserving} {
		out, err := Execute(s, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		// At full WCET both disciplines reproduce the static schedule.
		if out.Lmax != s.Lmax() {
			t.Fatalf("%v at WCET: Lmax %d != static %d", d, out.Lmax, s.Lmax())
		}
		if out.Makespan != s.Makespan() {
			t.Fatalf("%v at WCET: makespan %d != static %d", d, out.Makespan, s.Makespan())
		}
		for _, run := range out.Runs {
			if run.Start != s.Start(run.Task) || run.Finish != s.Finish(run.Task) {
				t.Fatalf("%v at WCET: task %d ran [%d,%d), table says [%d,%d)",
					d, run.Task, run.Start, run.Finish, s.Start(run.Task), s.Finish(run.Task))
			}
		}
	}
}

func TestTableDrivenRobustUnderJitter(t *testing.T) {
	// With actual <= WCET, table-driven finishes can only move earlier:
	// realized Lmax <= static Lmax, always.
	rng := rand.New(rand.NewSource(5))
	for seed := int64(1); seed <= 10; seed++ {
		s := solved(t, seed, 2)
		g := s.Graph
		actual := make([]taskgraph.Time, g.NumTasks())
		for _, task := range g.Tasks() {
			actual[task.ID] = 1 + taskgraph.Time(rng.Int63n(int64(task.Exec)))
		}
		out, err := Execute(s, TableDriven, actual)
		if err != nil {
			t.Fatal(err)
		}
		if out.Lmax > s.Lmax() {
			t.Fatalf("seed %d: table-driven jittered Lmax %d exceeds static %d",
				seed, out.Lmax, s.Lmax())
		}
		for _, run := range out.Runs {
			if run.Start != s.Start(run.Task) {
				t.Fatalf("seed %d: table-driven moved a start", seed)
			}
			if run.Finish > s.Finish(run.Task) {
				t.Fatalf("seed %d: task %d finished later than the table", seed, run.Task)
			}
		}
	}
}

func TestWorkConservingNeverLaterThanTable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seed := int64(20); seed <= 30; seed++ {
		s := solved(t, seed, 3)
		g := s.Graph
		actual := make([]taskgraph.Time, g.NumTasks())
		for _, task := range g.Tasks() {
			actual[task.ID] = 1 + taskgraph.Time(rng.Int63n(int64(task.Exec)))
		}
		out, err := Execute(s, WorkConserving, actual)
		if err != nil {
			t.Fatal(err)
		}
		finish := map[taskgraph.TaskID]taskgraph.Time{}
		for _, run := range out.Runs {
			finish[run.Task] = run.Finish
		}
		for _, task := range g.Tasks() {
			if finish[task.ID] > s.Finish(task.ID) {
				t.Fatalf("seed %d: work-conserving finished task %d at %d, table at %d",
					seed, task.ID, finish[task.ID], s.Finish(task.ID))
			}
		}
		if out.Lmax > s.Lmax() {
			t.Fatalf("seed %d: work-conserving Lmax regressed", seed)
		}
	}
}

func TestWorkConservingExploitsSlack(t *testing.T) {
	// A two-task chain where the first finishes early: work-conserving
	// starts the successor immediately, table-driven waits.
	g := taskgraph.Chain(2, 10, 0)
	st := sched.NewState(g, platform.New(1))
	st.Place(0, 0)
	st.Place(1, 0)
	s := st.Snapshot()

	actual := []taskgraph.Time{3, 10}
	tab, err := Execute(s, TableDriven, actual)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := Execute(s, WorkConserving, actual)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Makespan != 20 {
		t.Fatalf("table makespan %d, want 20 (starts pinned)", tab.Makespan)
	}
	if wc.Makespan != 13 {
		t.Fatalf("work-conserving makespan %d, want 13", wc.Makespan)
	}
}

func TestExecuteValidatesInputs(t *testing.T) {
	s := solved(t, 3, 2)
	n := s.Graph.NumTasks()
	if _, err := Execute(s, TableDriven, make([]taskgraph.Time, n+1)); err == nil {
		t.Fatal("wrong actual length accepted")
	}
	bad := make([]taskgraph.Time, n)
	for i := range bad {
		bad[i] = 1
	}
	bad[0] = s.Graph.Task(0).Exec + 1 // above WCET
	if _, err := Execute(s, TableDriven, bad); err == nil {
		t.Fatal("actual above WCET accepted")
	}
	bad[0] = 0
	if _, err := Execute(s, TableDriven, bad); err == nil {
		t.Fatal("zero actual accepted")
	}
	if _, err := Execute(s, Discipline(9), nil); err == nil {
		t.Fatal("unknown discipline accepted")
	}
	incomplete := sched.NewSchedule(s.Graph, s.Platform)
	if _, err := Execute(incomplete, TableDriven, nil); err == nil {
		t.Fatal("incomplete schedule accepted")
	}
}

func TestSweep(t *testing.T) {
	s := solved(t, 9, 2)
	full, err := Sweep(s, TableDriven, 1.0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// frac = 1: actual == WCET every run, zero variance.
	if full.MeanLmax != float64(s.Lmax()) || full.WorstLmax != s.Lmax() {
		t.Fatalf("frac=1 sweep: %+v vs static %d", full, s.Lmax())
	}

	jit, err := Sweep(s, WorkConserving, 0.5, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if jit.WorstLmax > s.Lmax() {
		t.Fatalf("work-conserving worst Lmax %d exceeds static %d", jit.WorstLmax, s.Lmax())
	}
	if jit.MeanMakespan >= float64(s.Makespan()) {
		t.Fatalf("jittered mean makespan %v did not improve on %d", jit.MeanMakespan, s.Makespan())
	}

	if _, err := Sweep(s, TableDriven, 0, 5, 1); err == nil {
		t.Fatal("zero jitter fraction accepted")
	}
	if _, err := Sweep(s, TableDriven, 0.5, 0, 1); err == nil {
		t.Fatal("zero runs accepted")
	}
}
