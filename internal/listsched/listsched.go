// Package listsched is a family of polynomial-time list schedulers over
// the §4.3 non-preemptive append-only operation, parametrized by the task
// priority function. It generalizes the EDF baseline of package edf (which
// stays separate because §4.4 defines it as THE paper baseline) and
// provides the classic static-priority comparators from the multiprocessor
// scheduling literature:
//
//	HLFET — Highest Level First with Estimated Times: priority is the
//	        task's bottom level (longest accumulated execution time from
//	        the task to any output, inclusive); the canonical makespan
//	        heuristic, here applied to lateness workloads.
//	LeastSlack — smallest static slack D_i − bottomLevel_i first: a
//	        lateness-aware refinement of EDF that accounts for the work
//	        still downstream of each task.
//	EDF   — earliest absolute deadline first (identical decisions to
//	        package edf; included so the family is closed under the
//	        comparison harness).
//
// At every step the scheduler picks the highest-priority ready task and
// places it on the processor yielding the earliest start time, with
// deterministic tie-breaks (priority, then task ID; processor index).
package listsched

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Policy selects the priority function.
type Policy int

const (
	// HLFET prioritizes the largest bottom level.
	HLFET Policy = iota
	// LeastSlack prioritizes the smallest D_i − bottomLevel_i.
	LeastSlack
	// EDF prioritizes the earliest absolute deadline.
	EDF
)

func (p Policy) String() string {
	switch p {
	case HLFET:
		return "HLFET"
	case LeastSlack:
		return "least-slack"
	case EDF:
		return "EDF"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Policies lists all members for comparison harnesses.
func Policies() []Policy { return []Policy{HLFET, LeastSlack, EDF} }

// Result is a list-scheduling outcome.
type Result struct {
	Schedule *sched.Schedule
	Lmax     taskgraph.Time
	Policy   Policy
}

// Schedule runs the list scheduler with the given policy.
func Schedule(g *taskgraph.Graph, p platform.Platform, pol Policy) (Result, error) {
	if err := p.ValidateFor(g.NumTasks()); err != nil {
		return Result{}, err
	}
	if _, err := g.TopoOrder(); err != nil {
		return Result{}, err
	}

	n := g.NumTasks()
	// Static priorities: SMALLER value = scheduled first.
	prio := make([]taskgraph.Time, n)
	for _, t := range g.Tasks() {
		switch pol {
		case HLFET:
			prio[t.ID] = -g.LongestToOutput(t.ID)
		case LeastSlack:
			prio[t.ID] = t.AbsDeadline() - g.LongestToOutput(t.ID)
		case EDF:
			prio[t.ID] = t.AbsDeadline()
		default:
			return Result{}, fmt.Errorf("listsched: unknown policy %d", pol)
		}
	}

	st := sched.NewState(g, p)
	ready := make([]taskgraph.TaskID, 0, n)
	for step := 0; step < n; step++ {
		ready = st.ReadyTasks(ready[:0])
		if len(ready) == 0 {
			return Result{}, fmt.Errorf("listsched: no ready task at step %d", step)
		}
		best := ready[0]
		for _, id := range ready[1:] {
			if prio[id] < prio[best] {
				best = id
			}
		}
		// Earliest finish over allowed processors, smallest index on ties
		// (identical to earliest-start on homogeneous platforms).
		bestProc := platform.NoProc
		bestFinish := taskgraph.Infinity
		for q := 0; q < p.M; q++ {
			if !p.Allows(best, platform.Proc(q)) {
				continue
			}
			if f := st.EST(best, platform.Proc(q)) + st.ExecOn(best, platform.Proc(q)); f < bestFinish {
				bestFinish, bestProc = f, platform.Proc(q)
			}
		}
		st.Place(best, bestProc)
	}
	return Result{Schedule: st.Snapshot(), Lmax: st.Lmax(), Policy: pol}, nil
}

// Best runs every policy and returns the best result (smallest Lmax,
// earliest policy on ties) — a cheap portfolio baseline.
func Best(g *taskgraph.Graph, p platform.Platform) (Result, error) {
	var best Result
	best.Lmax = taskgraph.Infinity
	for _, pol := range Policies() {
		res, err := Schedule(g, p, pol)
		if err != nil {
			return Result{}, err
		}
		if res.Lmax < best.Lmax {
			best = res
		}
	}
	return best, nil
}
