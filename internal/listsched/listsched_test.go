package listsched

import (
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/deadline"
	"repro/internal/edf"
	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/taskgraph"
)

func workloads(t testing.TB, count int, seed int64) []*taskgraph.Graph {
	t.Helper()
	gg := gen.New(gen.Defaults(), seed)
	out := make([]*taskgraph.Graph, count)
	for i := range out {
		g := gg.Graph()
		if err := deadline.Assign(g, 1.5, deadline.EqualSlack); err != nil {
			t.Fatal(err)
		}
		out[i] = g
	}
	return out
}

func TestAllPoliciesProduceValidSchedules(t *testing.T) {
	for gi, g := range workloads(t, 30, 3) {
		for m := 1; m <= 4; m++ {
			plat := platform.New(m)
			for _, pol := range Policies() {
				res, err := Schedule(g, plat, pol)
				if err != nil {
					t.Fatalf("graph %d m=%d %v: %v", gi, m, pol, err)
				}
				if !res.Schedule.Complete() {
					t.Fatalf("graph %d m=%d %v: incomplete", gi, m, pol)
				}
				if err := res.Schedule.Check(); err != nil {
					t.Fatalf("graph %d m=%d %v: %v", gi, m, pol, err)
				}
				if res.Lmax != res.Schedule.Lmax() {
					t.Fatalf("graph %d m=%d %v: Lmax mismatch", gi, m, pol)
				}
			}
		}
	}
}

func TestEDFPolicyMatchesEDFPackage(t *testing.T) {
	// The EDF policy must make the exact same decisions as package edf.
	for gi, g := range workloads(t, 20, 7) {
		for m := 1; m <= 3; m++ {
			plat := platform.New(m)
			a, err := Schedule(g, plat, EDF)
			if err != nil {
				t.Fatal(err)
			}
			b, err := edf.Schedule(g, plat)
			if err != nil {
				t.Fatal(err)
			}
			if a.Lmax != b.Lmax {
				t.Fatalf("graph %d m=%d: policy EDF Lmax %d != edf package %d",
					gi, m, a.Lmax, b.Lmax)
			}
			for _, task := range g.Tasks() {
				if a.Schedule.Start(task.ID) != b.Schedule.Start(task.ID) ||
					a.Schedule.Proc(task.ID) != b.Schedule.Proc(task.ID) {
					t.Fatalf("graph %d m=%d: schedules diverge at task %d", gi, m, task.ID)
				}
			}
		}
	}
}

func TestHLFETPrefersCriticalPath(t *testing.T) {
	// Fork with a long and a short branch: HLFET starts the long branch
	// first even when the short branch has the earlier deadline.
	g := taskgraph.New(4)
	src := g.AddTask(taskgraph.Task{Exec: 2, Deadline: 100})
	long1 := g.AddTask(taskgraph.Task{Exec: 10, Deadline: 200})
	long2 := g.AddTask(taskgraph.Task{Exec: 10, Deadline: 200})
	short := g.AddTask(taskgraph.Task{Exec: 2, Deadline: 50})
	g.MustAddEdge(src, long1, 0)
	g.MustAddEdge(long1, long2, 0)
	g.MustAddEdge(src, short, 0)

	res, err := Schedule(g, platform.New(1), HLFET)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Start(long1) > res.Schedule.Start(short) {
		t.Fatal("HLFET scheduled the short branch before the critical path")
	}
	// EDF makes the opposite call on one processor.
	resEDF, err := Schedule(g, platform.New(1), EDF)
	if err != nil {
		t.Fatal(err)
	}
	if resEDF.Schedule.Start(short) > resEDF.Schedule.Start(long1) {
		t.Fatal("EDF ignored the earlier deadline")
	}
}

func TestNoPolicyBeatsOptimal(t *testing.T) {
	p := gen.Defaults()
	p.NMin, p.NMax = 5, 7
	p.DepthMin, p.DepthMax = 3, 4
	gg := gen.New(p, 13)
	for i := 0; i < 15; i++ {
		g := gg.Graph()
		if err := deadline.Assign(g, 1.5, deadline.EqualSlack); err != nil {
			t.Fatal(err)
		}
		plat := platform.New(2)
		opt, err := bruteforce.Solve(g, plat)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range Policies() {
			res, err := Schedule(g, plat, pol)
			if err != nil {
				t.Fatal(err)
			}
			if res.Lmax < opt.Cost {
				t.Fatalf("graph %d: %v beat the optimum: %d < %d", i, pol, res.Lmax, opt.Cost)
			}
		}
		best, err := Best(g, plat)
		if err != nil {
			t.Fatal(err)
		}
		if best.Lmax < opt.Cost {
			t.Fatalf("graph %d: portfolio beat the optimum", i)
		}
	}
}

func TestBestPicksMinimum(t *testing.T) {
	for gi, g := range workloads(t, 10, 17) {
		plat := platform.New(3)
		best, err := Best(g, plat)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range Policies() {
			res, err := Schedule(g, plat, pol)
			if err != nil {
				t.Fatal(err)
			}
			if res.Lmax < best.Lmax {
				t.Fatalf("graph %d: Best missed %v with Lmax %d < %d", gi, pol, res.Lmax, best.Lmax)
			}
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	g := taskgraph.Diamond()
	if _, err := Schedule(g, platform.Platform{M: 0}, HLFET); err == nil {
		t.Fatal("bad platform accepted")
	}
	if _, err := Schedule(g, platform.New(2), Policy(42)); err == nil {
		t.Fatal("unknown policy accepted")
	}
	cyc := taskgraph.New(2)
	a := cyc.AddTask(taskgraph.Task{Exec: 1, Deadline: 10})
	b := cyc.AddTask(taskgraph.Task{Exec: 1, Deadline: 10})
	cyc.MustAddEdge(a, b, 0)
	cyc.MustAddEdge(b, a, 0)
	if _, err := Schedule(cyc, platform.New(1), HLFET); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, pol := range Policies() {
		if pol.String() == "" {
			t.Fatal("empty policy name")
		}
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy String empty")
	}
}
