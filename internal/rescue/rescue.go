// Package rescue is the fault-recovery engine: when a processor fail-stops
// under a dispatched static schedule, it freezes what already happened,
// constructs the residual scheduling problem — the unfinished tasks, the
// surviving processors, and the data the completed tasks already produced —
// and re-solves it, preferring the branch-and-bound engine under a strict
// wall-clock recovery budget and degrading to list scheduling when the
// budget is zero or the search returns nothing usable.
//
// The recovery model is drain-then-recover: the dispatcher lets the
// surviving processors finish the work they can still run from the original
// table (work-conserving, per internal/dispatch.ExecuteFaulty) and re-plans
// everything that was killed or never started. Killed tasks restart from
// scratch — the execution model is non-preemptive with no checkpoints, so
// partial work is worthless. The recovery origin is therefore
//
//	Origin = max(last fail-stop instant, last realized finish on a
//	             surviving processor)
//
// and the residual problem lives in a shifted time base with t = 0 at
// Origin. Data produced by completed tasks is charged one conservative
// cross-processor message cost (the recovered consumer may land anywhere);
// channels between two unfinished tasks stay ordinary edges of the residual
// graph. Residual deadlines keep their original absolute instants, so they
// may carry negative slack — max-lateness minimization handles that
// gracefully, and the post-fault Lmax honestly reports the damage.
//
// The B&B path inherits the anytime contract of internal/core: a censored
// or canceled recovery solve still yields the best incumbent found, so a
// recovery budget never leaves the platform without a plan unless the
// residual problem itself is infeasible to construct (no survivors).
package rescue

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/faults"
	"repro/internal/listsched"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Options tunes a recovery.
type Options struct {
	// Budget is the wall-clock allowance for the B&B recovery solve. Zero
	// skips the search entirely and uses the list-scheduling fallback.
	Budget time.Duration

	// Params configures the B&B recovery solve (branching, bounds, ...).
	// Resources.TimeLimit is overridden by Budget.
	Params core.Params

	// Workers > 1 uses the parallel solver for the recovery search.
	Workers int
}

// Residual is the re-scheduling problem extracted from a faulty run.
type Residual struct {
	Graph    *taskgraph.Graph  // unfinished tasks, shifted time base
	Platform platform.Platform // surviving processors, renumbered densely

	// TaskMap and ProcMap translate residual IDs back to the original
	// problem: TaskMap[r] is the original task behind residual task r,
	// ProcMap[q] the original processor behind residual processor q.
	TaskMap []taskgraph.TaskID
	ProcMap []platform.Proc

	// Origin is the recovery time origin: residual instant 0 is absolute
	// instant Origin.
	Origin taskgraph.Time
}

// Placement is one recovered task in the original problem space.
type Placement struct {
	Task   taskgraph.TaskID
	Proc   platform.Proc // an original, surviving processor
	Start  taskgraph.Time
	Finish taskgraph.Time
}

// Outcome reports one recovery end to end.
type Outcome struct {
	// Fault is the ground truth the recovery started from.
	Fault *dispatch.FaultOutcome
	// Residual is nil when every task completed and nothing needed rescue.
	Residual *Residual

	// Recovered is the residual-space schedule chosen for the unfinished
	// work (nil iff Residual is nil); Merged is the same plan translated
	// into original task IDs, processors and absolute time.
	Recovered *sched.Schedule
	Merged    []Placement

	// Degraded is true when the plan came from the list-scheduling
	// fallback: the budget was zero, the search failed, or the search
	// incumbent was worse than the list schedule.
	Degraded bool
	// BB is the branch-and-bound recovery result when the search ran (its
	// Reason records how the budgeted solve terminated); nil otherwise.
	BB *core.Result

	// PreLmax is the static promise of the original schedule; PostLmax the
	// realized maximum lateness across surviving and recovered tasks.
	// Misses counts tasks that finished past their absolute deadline.
	PreLmax  taskgraph.Time
	PostLmax taskgraph.Time
	Misses   int

	// RecoveryLatency is the wall-clock time the recovery decision took.
	RecoveryLatency time.Duration
}

// BuildResidual extracts the residual problem from a faulty run of the
// schedule. It fails when no processor survives the scenario. A run with
// no unfinished tasks yields a nil Residual and no error.
func BuildResidual(s *sched.Schedule, out *dispatch.FaultOutcome) (*Residual, error) {
	g, p := s.Graph, s.Platform
	n := g.NumTasks()
	sc := out.Scenario

	unfinished := 0
	for _, st := range out.Status {
		if st != dispatch.StatusCompleted {
			unfinished++
		}
	}
	if unfinished == 0 {
		return nil, nil
	}

	// Surviving processors, renumbered densely.
	var procMap []platform.Proc
	for q := 0; q < p.M; q++ {
		if _, dead := sc.DeadAt(platform.Proc(q)); !dead {
			procMap = append(procMap, platform.Proc(q))
		}
	}
	if len(procMap) == 0 {
		return nil, fmt.Errorf("rescue: no surviving processors")
	}

	// Drain-then-recover origin: after the last failure AND after the
	// surviving processors finish what they could still run.
	origin, _ := sc.LastFailure()
	for id, st := range out.Status {
		if st == dispatch.StatusCompleted && out.Finish[id] > origin {
			origin = out.Finish[id]
		}
	}

	res := &Residual{
		Graph:    taskgraph.New(0),
		Platform: platform.Platform{M: len(procMap), CommDelay: p.CommDelay},
		ProcMap:  procMap,
		Origin:   origin,
	}
	back := make([]taskgraph.TaskID, n) // original → residual
	for i := range back {
		back[i] = taskgraph.NoTask
	}
	for _, t := range g.Tasks() {
		if out.Status[t.ID] == dispatch.StatusCompleted {
			continue
		}
		// Earliest absolute start: the original arrival, the recovery
		// origin, and one conservative cross-processor delivery after each
		// completed predecessor's realized finish (the recovered task may
		// land on any surviving processor).
		phase := t.Arrival()
		if origin > phase {
			phase = origin
		}
		for _, pred := range g.Preds(t.ID) {
			if out.Status[pred] != dispatch.StatusCompleted {
				continue
			}
			at := out.Finish[pred] + p.MessageCost(g.MessageSize(pred, t.ID))
			if at > phase {
				phase = at
			}
		}
		rid := res.Graph.AddTask(taskgraph.Task{
			Name:     t.Name,
			Exec:     t.Exec,
			Phase:    phase - origin,
			Deadline: t.AbsDeadline() - phase, // keeps the absolute deadline; may go negative
		})
		back[t.ID] = rid
		res.TaskMap = append(res.TaskMap, t.ID)
	}
	// Channels between two unfinished tasks survive as residual edges.
	for _, c := range g.SortedArcs() {
		if back[c.Src] != taskgraph.NoTask && back[c.Dst] != taskgraph.NoTask {
			res.Graph.MustAddEdge(back[c.Src], back[c.Dst], c.Size)
		}
	}
	return res, nil
}

// Recover runs the full pipeline: dispatch the schedule under the fault
// scenario, build the residual problem, re-solve it within the budget, and
// report the merged plan with post-fault metrics. actual passes through to
// dispatch.ExecuteFaulty (nil = WCETs). The context cancels the B&B phase;
// thanks to the anytime contract a canceled solve still degrades cleanly.
func Recover(ctx context.Context, s *sched.Schedule, sc *faults.Scenario, actual []taskgraph.Time, opt Options) (*Outcome, error) {
	started := time.Now()
	fault, err := dispatch.ExecuteFaulty(s, sc, actual)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Fault: fault, PreLmax: s.Lmax()}

	res, err := BuildResidual(s, fault)
	if err != nil {
		return nil, err
	}
	if res == nil {
		// Nothing was lost; the realized run is the final word.
		out.PostLmax = fault.Lmax
		out.Misses = missCount(s, fault, nil)
		out.RecoveryLatency = time.Since(started)
		return out, nil
	}
	out.Residual = res

	// The list schedule is the guaranteed fallback: cheap, always succeeds
	// on a valid residual problem.
	fallback, err := listsched.Best(res.Graph, res.Platform)
	if err != nil {
		return nil, fmt.Errorf("rescue: list fallback: %w", err)
	}
	out.Recovered, out.Degraded = fallback.Schedule, true

	if opt.Budget > 0 {
		p := opt.Params
		p.Resources.TimeLimit = opt.Budget
		var bb core.Result
		if opt.Workers > 1 {
			bb, err = core.SolveParallelContext(ctx, res.Graph, res.Platform, core.ParallelParams{
				Params: p, Workers: opt.Workers,
			})
		} else {
			bb, err = core.SolveContext(ctx, res.Graph, res.Platform, p)
		}
		// A failed search (panic) still reports its salvaged result; only a
		// usable incumbent that beats the fallback lifts the degradation.
		if bb.Schedule != nil || err == nil {
			out.BB = &bb
		}
		if bb.Schedule != nil && bb.Cost <= fallback.Lmax {
			out.Recovered, out.Degraded = bb.Schedule, false
		}
	}

	if err := out.Recovered.Check(); err != nil {
		return nil, fmt.Errorf("rescue: recovered schedule invalid: %w", err)
	}

	// Merge back into the original problem space.
	for _, pl := range out.Recovered.Placements() {
		out.Merged = append(out.Merged, Placement{
			Task:   res.TaskMap[pl.Task],
			Proc:   res.ProcMap[pl.Proc],
			Start:  res.Origin + pl.Start,
			Finish: res.Origin + pl.Finish,
		})
	}

	out.PostLmax = fault.Lmax
	for _, pl := range out.Merged {
		if l := pl.Finish - s.Graph.Task(pl.Task).AbsDeadline(); l > out.PostLmax {
			out.PostLmax = l
		}
	}
	out.Misses = missCount(s, fault, out.Merged)
	out.RecoveryLatency = time.Since(started)
	return out, nil
}

// missCount counts tasks finishing past their absolute deadline: completed
// tasks by their realized finish, recovered tasks by their merged finish.
func missCount(s *sched.Schedule, fault *dispatch.FaultOutcome, merged []Placement) int {
	misses := 0
	for _, t := range s.Graph.Tasks() {
		if fault.Status[t.ID] == dispatch.StatusCompleted && fault.Finish[t.ID] > t.AbsDeadline() {
			misses++
		}
	}
	for _, pl := range merged {
		if pl.Finish > s.Graph.Task(pl.Task).AbsDeadline() {
			misses++
		}
	}
	return misses
}
