package rescue

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deadline"
	"repro/internal/dispatch"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/listsched"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// workload returns a complete, valid static schedule on m processors.
func workload(t testing.TB, seed int64, n, m int) *sched.Schedule {
	t.Helper()
	p := gen.Defaults()
	p.NMin, p.NMax = n, n
	g := gen.New(p, seed).Graph()
	if err := deadline.Assign(g, 1.5, deadline.EqualSlack); err != nil {
		t.Fatal(err)
	}
	res, err := listsched.Best(g, platform.New(m))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Check(); err != nil {
		t.Fatal(err)
	}
	return res.Schedule
}

// midFailure returns a scenario killing one processor mid-run.
func midFailure(s *sched.Schedule, q platform.Proc) *faults.Scenario {
	return &faults.Scenario{Faults: []faults.Fault{
		{Kind: faults.ProcFailure, Proc: q, At: s.Makespan() / 2},
	}}
}

func TestRecoverNothingLost(t *testing.T) {
	s := workload(t, 1, 12, 3)
	out, err := Recover(context.Background(), s, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Residual != nil || out.Recovered != nil || out.Merged != nil {
		t.Fatal("fault-free run should need no recovery")
	}
	if out.PostLmax != out.Fault.Lmax {
		t.Fatalf("PostLmax %d != realized %d", out.PostLmax, out.Fault.Lmax)
	}
}

// TestRecoverListFallback exercises the degraded path end to end: with a
// zero budget the plan must come from list scheduling, and the merged plan
// must cover exactly the unfinished tasks with post-fault metrics reported.
func TestRecoverListFallback(t *testing.T) {
	s := workload(t, 2, 14, 3)
	sc := midFailure(s, 0)
	out, err := Recover(context.Background(), s, sc, nil, Options{Budget: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Residual == nil {
		t.Fatal("a mid-run processor failure must leave unfinished work")
	}
	if !out.Degraded || out.BB != nil {
		t.Fatalf("budget 0 must degrade to the list fallback (degraded=%v bb=%v)", out.Degraded, out.BB)
	}
	checkMergedPlan(t, s, out)
	if out.PostLmax < out.PreLmax {
		t.Fatalf("recovery beats the static promise: post %d < pre %d", out.PostLmax, out.PreLmax)
	}
	if out.RecoveryLatency <= 0 {
		t.Fatal("recovery latency not measured")
	}
}

// TestRecoverBBPath exercises the budgeted branch-and-bound path: the
// search must run, terminate with a typed reason, and never do worse than
// the list fallback.
func TestRecoverBBPath(t *testing.T) {
	s := workload(t, 3, 14, 3)
	sc := midFailure(s, 1)
	out, err := Recover(context.Background(), s, sc, nil, Options{Budget: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if out.BB == nil {
		t.Fatal("budgeted recovery never ran the search")
	}
	if out.Degraded {
		t.Fatalf("EDF-seeded B&B lost to the list fallback (bb cost %d)", out.BB.Cost)
	}
	if out.BB.Reason.Exhaustive() && !out.BB.Optimal {
		t.Fatalf("exhaustive recovery solve (%v) not marked optimal", out.BB.Reason)
	}
	fallback, err := listsched.Best(out.Residual.Graph, out.Residual.Platform)
	if err != nil {
		t.Fatal(err)
	}
	if out.Recovered.Lmax() > fallback.Lmax {
		t.Fatalf("B&B recovery Lmax %d worse than list %d", out.Recovered.Lmax(), fallback.Lmax)
	}
	checkMergedPlan(t, s, out)
}

// TestRecoverCanceledStillDegrades pins the anytime interaction: a
// pre-canceled context aborts the search immediately, yet recovery still
// returns a plan (the seed incumbent or the list fallback).
func TestRecoverCanceledStillDegrades(t *testing.T) {
	s := workload(t, 4, 14, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Recover(ctx, s, midFailure(s, 0), nil, Options{Budget: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if out.Recovered == nil {
		t.Fatal("canceled recovery returned no plan")
	}
	if out.BB != nil && out.BB.Reason != core.TermCanceled {
		t.Fatalf("search reason = %v, want canceled", out.BB.Reason)
	}
	checkMergedPlan(t, s, out)
}

func TestRecoverNoSurvivors(t *testing.T) {
	s := workload(t, 5, 10, 2)
	sc := &faults.Scenario{Faults: []faults.Fault{
		{Kind: faults.ProcFailure, Proc: 0, At: 0},
		{Kind: faults.ProcFailure, Proc: 1, At: 0},
	}}
	if _, err := Recover(context.Background(), s, sc, nil, Options{}); err == nil {
		t.Fatal("recovery on a dead platform must fail")
	}
}

// TestRecoveredScheduleProperties is the quick-check pass: across random
// workloads and seeded fault scenarios (failures and overruns combined),
// every recovered plan must respect precedence with realized channel
// delivery, processor death, and the recovery origin.
func TestRecoveredScheduleProperties(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		s := workload(t, seed, 10+int(seed%5), 3)
		model := faults.NewModel(seed * 31)
		sc := &faults.Scenario{Faults: []faults.Fault{
			model.ProcFailure(s.Platform, s.Makespan()),
		}}
		sc.Faults = append(sc.Faults, model.Overruns(s.Graph, 0.2, 0.5)...)
		if err := sc.Validate(s.Graph.NumTasks(), s.Platform.M); err != nil {
			t.Fatal(err)
		}
		for _, budget := range []time.Duration{0, 50 * time.Millisecond} {
			out, err := Recover(context.Background(), s, sc, nil, Options{Budget: budget})
			if err != nil {
				t.Fatalf("seed %d budget %v: %v", seed, budget, err)
			}
			if out.Residual == nil {
				continue // the fault landed after every start; nothing lost
			}
			checkMergedPlan(t, s, out)
		}
	}
}

// checkMergedPlan verifies the merged recovery plan in original problem
// space: coverage, processor-death, origin, precedence + channel delivery,
// and per-processor non-overlap.
func checkMergedPlan(t *testing.T, s *sched.Schedule, out *Outcome) {
	t.Helper()
	g, p := s.Graph, s.Platform
	fault, res := out.Fault, out.Residual
	sc := fault.Scenario

	// Exactly the unfinished tasks, each exactly once.
	covered := make(map[taskgraph.TaskID]Placement, len(out.Merged))
	for _, pl := range out.Merged {
		if _, dup := covered[pl.Task]; dup {
			t.Fatalf("task %d recovered twice", pl.Task)
		}
		covered[pl.Task] = pl
	}
	for id, st := range fault.Status {
		tid := taskgraph.TaskID(id)
		_, ok := covered[tid]
		if (st == dispatch.StatusCompleted) == ok {
			t.Fatalf("task %d status %v, in merged plan: %v", id, st, ok)
		}
	}

	for _, pl := range out.Merged {
		// Only surviving processors, only after the recovery origin.
		if at, dead := sc.DeadAt(pl.Proc); dead {
			t.Fatalf("task %d recovered on processor %d, dead since %d", pl.Task, pl.Proc, at)
		}
		if pl.Start < res.Origin {
			t.Fatalf("task %d starts at %d before the recovery origin %d", pl.Task, pl.Start, res.Origin)
		}
		if pl.Start < g.Task(pl.Task).Arrival() {
			t.Fatalf("task %d starts at %d before its arrival", pl.Task, pl.Start)
		}
		if pl.Finish != pl.Start+g.Task(pl.Task).Exec {
			t.Fatalf("task %d occupies [%d,%d), exec %d", pl.Task, pl.Start, pl.Finish, g.Task(pl.Task).Exec)
		}
		// Precedence with realized channel delivery.
		for _, pred := range g.Preds(pl.Task) {
			size := g.MessageSize(pred, pl.Task)
			if fault.Status[pred] == dispatch.StatusCompleted {
				need := fault.Finish[pred] + p.CommCost(s.Proc(pred), pl.Proc, size)
				if pl.Start < need {
					t.Fatalf("task %d starts at %d before completed pred %d delivers at %d",
						pl.Task, pl.Start, pred, need)
				}
			} else {
				pp, ok := covered[pred]
				if !ok {
					t.Fatalf("unfinished pred %d of %d missing from the plan", pred, pl.Task)
				}
				need := pp.Finish + p.CommCost(pp.Proc, pl.Proc, size)
				if pl.Start < need {
					t.Fatalf("task %d starts at %d before recovered pred %d delivers at %d",
						pl.Task, pl.Start, pred, need)
				}
			}
		}
		// Non-overlap per processor.
		for _, other := range out.Merged {
			if other.Task == pl.Task || other.Proc != pl.Proc {
				continue
			}
			if pl.Start < other.Finish && other.Start < pl.Finish {
				t.Fatalf("tasks %d and %d overlap on processor %d", pl.Task, other.Task, pl.Proc)
			}
		}
	}
}
