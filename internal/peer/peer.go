// Package peer is the shared JSON/HTTP substrate of the repository's
// replicated subsystems. It carries the idioms the distributed B&B
// fabric (internal/dist) grew — a POST-only strict JSON envelope, a
// typed error body, a small blocking RPC client, and a caller-locked
// membership registry with per-member service-time sampling — so that
// dist and the multi-tenant serving grid (internal/grid) consume one
// implementation instead of two copies.
//
// The package is deliberately policy-free: it knows nothing about
// solves, slices, tenants, or cache keys. Registries do not lock
// themselves — every current consumer already serializes membership
// under its own mutex alongside other state, and a second internal lock
// would only manufacture lock-order hazards.
package peer

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// MaxBodyBytes bounds every request and response body this package
// reads. Canonical graph encodings are the largest payloads on any of
// our wires; 32 MiB leaves an order of magnitude of headroom.
const MaxBodyBytes = 32 << 20

// ErrorResponse is the error envelope every peer endpoint returns on
// non-200 status codes.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DecodeJSON decodes a POST body into T with unknown fields rejected
// and the size capped at MaxBodyBytes. On failure it writes the error
// response itself and returns ok=false — handlers just return.
func DecodeJSON[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var req T
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return req, false
	}
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return req, false
	}
	return req, true
}

// WriteJSON writes v as a 200 JSON response.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the ErrorResponse envelope with the given status.
func WriteError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}
