package peer

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestClientPostRoundTrip(t *testing.T) {
	type ping struct {
		N int `json:"n"`
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, ok := DecodeJSON[ping](w, r)
		if !ok {
			return
		}
		WriteJSON(w, ping{N: req.N + 1})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	var out ping
	if err := c.Post(context.Background(), "/", ping{N: 41}, &out); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if out.N != 42 {
		t.Fatalf("round trip: got %d, want 42", out.N)
	}
}

func TestClientPostErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusTeapot, "no coffee here")
	}))
	defer srv.Close()

	var out struct{}
	err := NewClient(srv.URL).Post(context.Background(), "/x", struct{}{}, &out)
	if err == nil || !strings.Contains(err.Error(), "no coffee here") {
		t.Fatalf("want decoded error envelope, got %v", err)
	}
}

func TestDecodeJSONRejectsGetAndUnknownFields(t *testing.T) {
	type ping struct {
		N int `json:"n"`
	}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := DecodeJSON[ping](w, r); ok {
			WriteJSON(w, ping{})
		}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: got %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL, "application/json", strings.NewReader(`{"n":1,"bogus":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: got %d, want 400", resp.StatusCode)
	}
}

func TestRegistryTouchIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Touch(0, "a")
	b := r.Touch(0, "b")
	if a.ID == b.ID {
		t.Fatalf("two fresh members share ID %d", a.ID)
	}
	if got := r.Touch(a.ID, ""); got != a {
		t.Fatalf("Touch(%d) returned a different member", a.ID)
	}
	if a.Name != "a" {
		t.Fatalf("empty name overwrote label: %q", a.Name)
	}
	// A rejoin with a high explicit ID must not let future zero-ID joins
	// collide with it.
	r.Touch(100, "old")
	c := r.Touch(0, "c")
	if c.ID <= 100 {
		t.Fatalf("fresh ID %d collides with rejoined ID space", c.ID)
	}
	if r.FindName("old") == nil || r.FindName("nope") != nil {
		t.Fatal("FindName lookup wrong")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	r.Remove(c.ID)
	if r.Find(c.ID) != nil {
		t.Fatal("Remove left the member behind")
	}
}

func TestMemberServiceSampling(t *testing.T) {
	m := &Member{JoinedAt: time.Now()}
	for i := 0; i < 3*memberSampleCap; i++ {
		m.NoteService(10 * time.Millisecond)
	}
	if len(m.samples) != memberSampleCap {
		t.Fatalf("ring grew to %d", len(m.samples))
	}
	if m.Reports != int64(3*memberSampleCap) {
		t.Fatalf("Reports = %d", m.Reports)
	}
	if got := m.ServiceQuantile(0.5); math.Abs(got-0.010) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.010", got)
	}
}

func TestQuantile(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile not zero")
	}
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("q0.5 = %v, want 2.5", got)
	}
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}
