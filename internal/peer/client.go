package peer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is a blocking JSON-over-HTTP RPC client for one peer: the
// dist worker talking to its coordinator, or a grid replica talking to
// a cache owner. Post is safe for concurrent use.
type Client struct {
	// Base is the peer's base URL, e.g. "http://host:9091".
	Base string

	// HTTP is the underlying client (default: 10s timeout). Callers
	// with long-blocking RPCs (grid flight waits) pass their own client
	// and bound each call through ctx instead.
	HTTP *http.Client
}

// NewClient returns a client for the peer at base with a default
// 10-second per-call timeout.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: &http.Client{Timeout: 10 * time.Second}}
}

// Post sends in as a JSON POST to base+path and decodes the 200
// response into out. Non-200 responses decode the ErrorResponse
// envelope into the returned error.
func (c *Client) Post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //bbvet:ignore errcheck — close on a fully-read response body
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("peer: %s: %s", path, e.Error)
		}
		return fmt.Errorf("peer: %s: HTTP %d", path, resp.StatusCode)
	}
	return json.Unmarshal(raw, out)
}
