package peer

import (
	"sort"
	"time"
)

// memberSampleCap bounds the per-member service-time ring.
const memberSampleCap = 64

// Member is one registered peer: a fabric worker or a grid replica.
// Heartbeats refresh only LastSeen; accepted work lands in the
// service-time ring through NoteService. All fields are guarded by the
// owning subsystem's mutex (see Registry).
type Member struct {
	ID       int64
	Name     string
	LastSeen time.Time
	JoinedAt time.Time
	Draining bool

	// Busy is the total time spent inside accepted work items; Reports
	// counts them. BusyFraction-style gauges divide Busy by the time
	// since JoinedAt.
	Busy    time.Duration
	Reports int64

	samples    []float64 // service seconds, ring of memberSampleCap
	sampleNext int
}

// NoteService records one accepted work item's service time.
func (m *Member) NoteService(d time.Duration) {
	sec := d.Seconds()
	if len(m.samples) < memberSampleCap {
		m.samples = append(m.samples, sec)
	} else {
		m.samples[m.sampleNext] = sec
		m.sampleNext = (m.sampleNext + 1) % memberSampleCap
	}
	m.Busy += d
	m.Reports++
}

// ServiceQuantile returns the q-quantile of the member's recent service
// times, in seconds. Zero with no samples yet.
func (m *Member) ServiceQuantile(q float64) float64 {
	return Quantile(m.samples, q)
}

// Registry is a membership table keyed by member ID. It is deliberately
// NOT self-locking: every consumer already guards membership together
// with adjacent state (the dist coordinator's active solve, the grid
// node's ring) under one mutex, and callers hold that mutex across
// every Registry call.
type Registry struct {
	members map[int64]*Member
	nextID  int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{members: map[int64]*Member{}}
}

// Touch registers or refreshes a member. A zero ID allocates the next
// identity; a rejoining member carries its old positive ID so load
// accounting survives restarts. A non-empty name updates the label.
func (r *Registry) Touch(id int64, name string) *Member {
	m, ok := r.members[id]
	if !ok {
		if id <= 0 {
			r.nextID++
			id = r.nextID
		} else if id > r.nextID {
			r.nextID = id
		}
		m = &Member{ID: id, Name: name, JoinedAt: time.Now()}
		r.members[id] = m
	}
	if name != "" {
		m.Name = name
	}
	m.LastSeen = time.Now()
	return m
}

// Find returns the member with the given ID, or nil.
func (r *Registry) Find(id int64) *Member {
	return r.members[id]
}

// FindName returns some member with the given name, or nil.
func (r *Registry) FindName(name string) *Member {
	for _, m := range r.members {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Remove drops a member from the registry.
func (r *Registry) Remove(id int64) {
	delete(r.members, id)
}

// Len returns the number of registered members.
func (r *Registry) Len() int {
	return len(r.members)
}

// Each calls fn for every member, in unspecified order.
func (r *Registry) Each(fn func(*Member)) {
	for _, m := range r.members {
		fn(m)
	}
}

// Quantile returns the q-quantile of xs by linear interpolation (xs is
// copied, not mutated). Zero when empty.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}
