// Package transpose implements a sharded, memory-bounded transposition
// table for duplicate detection in the branch-and-bound search.
//
// The paper's algorithm explores a TREE of partial schedules, so one state
// — reachable by many placement orders and processor relabelings — is
// re-expanded once per arrival path. Orr & Sinnen (duplicate-free task
// scheduling state spaces) showed pruning those re-arrivals yields
// order-of-magnitude searched-vertex reductions; Akram/Maas/Sanders showed
// the win survives parallel search when the table is sharded and its
// memory hard-bounded. This package is that table, kept deliberately
// dependency-free: keys are the 128-bit canonical signatures computed by
// internal/sched (processor-permutation-invariant), values are the depth
// and lower bound of the first expansion.
//
// Design:
//
//   - A power-of-two array of 64-byte buckets (two 32-byte slots each, one
//     cache line), sized from a hard byte budget at construction. The
//     allocation never grows, so bytes-in-use ≤ budget holds structurally.
//   - Striped locks: bucket index → one of 128 stripes, each with its own
//     mutex and counters, so concurrent workers (SolveParallel) rarely
//     contend.
//   - Replacement: slot 0 is depth-preferred — shallower entries (larger
//     subtrees, more valuable to dedup) displace deeper ones, the loser
//     falls to slot 1; slot 1 is always-replace. Overwriting a live entry
//     counts as an eviction.
//   - Reset is O(#stripes): a global epoch is bumped and entries from old
//     epochs are treated as absent (counted stale when touched) and
//     reclaimed lazily. SolveIDA resets between threshold iterations;
//     fleet workers reset between solves and after non-exhausted slices.
//
// Subsumption: Probe reports a hit only for an entry with the same key AND
// depth whose stored bound is ≤ the probing child's bound. True duplicates
// have equal bounds (the bound is a function of the state); the depth and
// bound comparisons are collision guards layered on the 128-bit key, so a
// hash accident must also match depth and present a not-worse bound before
// it can prune anything.
package transpose

import (
	"sync"
	"sync/atomic"
)

// Entry is the exportable form of one table record, used for the fleet's
// signature-digest exchange (see internal/dist).
type Entry struct {
	Lo    uint64
	Hi    uint64
	Depth int32
	LB    int64
}

// slot is one stored state: 32 bytes, two per cache-line-sized bucket.
type slot struct {
	lo    uint64
	hi    uint64
	lb    int64
	depth int32
	epoch uint32 // 0 = never used; live iff epoch == table epoch
}

type bucket [2]slot

const (
	slotBytes   = 32
	bucketBytes = 64
	numStripes  = 128

	// MinBudget is the smallest accepted byte budget (64 buckets); New
	// clamps smaller requests up so the table always holds something.
	MinBudget = 64 * bucketBytes

	// DefaultBudget is the budget used when a caller passes 0: 64 MiB,
	// roughly two million states.
	DefaultBudget = 64 << 20
)

// stripe is one lock shard with its counters, padded to a cache line so
// neighbouring stripes do not false-share.
type stripe struct {
	mu        sync.Mutex
	hits      int64
	misses    int64
	stores    int64
	evictions int64
	stale     int64
	live      int64 // slots holding a current-epoch entry
	_         [2]uint64
}

// Stats is a point-in-time snapshot of the table counters and sizing.
type Stats struct {
	Hits      int64 // Probe found a subsuming entry
	Misses    int64 // Probe found nothing usable
	Stores    int64 // Store calls (including overwrites)
	Evictions int64 // live entries displaced by replacement
	Stale     int64 // old-epoch entries touched (counted once per touch)
	Dropped   int64 // collected entries discarded because the digest buffer was full

	Buckets    int   // bucket count (power of two)
	Budget     int64 // configured byte budget
	BytesCap   int64 // bytes actually allocated for buckets (≤ Budget)
	BytesInUse int64 // live entries × 32 bytes (≤ BytesCap)
}

// Table is the sharded transposition table. All methods are safe for
// concurrent use.
type Table struct {
	buckets []bucket
	mask    uint64
	budget  int64
	epoch   uint32 // written under ALL stripe locks, read under any one
	stripes [numStripes]stripe

	// digest collection (fleet mode): bounded buffer of recent stores.
	// collectCap is atomic so the store fast path can skip the buffer
	// lock entirely when collection is off.
	collectCap     atomic.Int64
	collectMu      sync.Mutex
	collect        []Entry
	collectDropped int64
}

// New builds a table holding the largest power-of-two bucket count whose
// allocation fits budgetBytes (0 picks DefaultBudget; smaller than
// MinBudget is clamped up to it).
func New(budgetBytes int64) *Table {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudget
	}
	if budgetBytes < MinBudget {
		budgetBytes = MinBudget
	}
	n := 1
	for int64(n*2)*bucketBytes <= budgetBytes {
		n *= 2
	}
	return &Table{
		buckets: make([]bucket, n),
		mask:    uint64(n - 1),
		budget:  budgetBytes,
		epoch:   1,
	}
}

// Budget returns the configured byte budget.
func (t *Table) Budget() int64 { return t.budget }

func (t *Table) stripeFor(idx uint64) *stripe {
	return &t.stripes[idx&(numStripes-1)]
}

// Probe reports whether a stored entry subsumes the state (same key, same
// depth, stored bound ≤ lb): the caller may prune the state as a
// duplicate.
func (t *Table) Probe(lo, hi uint64, depth int32, lb int64) bool {
	idx := (lo ^ hi*0x9e3779b97f4a7c15) & t.mask
	st := t.stripeFor(idx)
	st.mu.Lock()
	defer st.mu.Unlock()
	b := &t.buckets[idx]
	for i := range b {
		s := &b[i]
		if s.lo != lo || s.hi != hi || s.depth != depth {
			continue
		}
		if s.epoch != t.epoch {
			if s.epoch != 0 {
				st.stale++
			}
			continue
		}
		if s.lb <= lb {
			st.hits++
			return true
		}
	}
	st.misses++
	return false
}

// Store records an expanded state. Same-key entries are refreshed;
// otherwise dead (old-epoch or never-used) slots are claimed first, then
// the depth-preferred replacement runs: a new entry at depth ≤ slot 0's
// displaces it into slot 1; deeper entries replace slot 1 only.
func (t *Table) Store(lo, hi uint64, depth int32, lb int64) {
	idx := (lo ^ hi*0x9e3779b97f4a7c15) & t.mask
	st := t.stripeFor(idx)
	st.mu.Lock()
	b := &t.buckets[idx]
	st.stores++
	entry := slot{lo: lo, hi: hi, lb: lb, depth: depth, epoch: t.epoch}
	rec := Entry{Lo: lo, Hi: hi, Depth: depth, LB: lb}

	// Refresh an existing record of the same state.
	for i := range b {
		s := &b[i]
		if s.lo == lo && s.hi == hi && s.depth == depth && s.epoch == t.epoch {
			if lb < s.lb {
				s.lb = lb
			}
			st.mu.Unlock()
			return
		}
	}
	// Tier placement. Slot 0 is the depth-preferred tier: a dead slot 0 is
	// claimed outright, and a new entry no deeper than the resident one
	// displaces it (the resident falls to slot 1). Everything else lands in
	// the always-replace slot 1.
	switch {
	case b[0].epoch != t.epoch:
		b[0] = entry
		st.live++
	case depth <= b[0].depth:
		if b[1].epoch != t.epoch {
			st.live++
		} else {
			st.evictions++
		}
		b[1] = b[0]
		b[0] = entry
	default:
		if b[1].epoch != t.epoch {
			st.live++
		} else {
			st.evictions++
		}
		b[1] = entry
	}
	st.mu.Unlock()
	t.collected(rec)
}

// StoreEntry is Store over the exported record form.
func (t *Table) StoreEntry(e Entry) { t.Store(e.Lo, e.Hi, e.Depth, e.LB) }

// Import bulk-loads entries (a digest received from a peer).
func (t *Table) Import(entries []Entry) {
	for _, e := range entries {
		t.Store(e.Lo, e.Hi, e.Depth, e.LB)
	}
}

// Reset invalidates every entry in O(#stripes) by bumping the epoch. Old
// entries are reclaimed lazily as their slots are touched.
func (t *Table) Reset() {
	for i := range t.stripes {
		t.stripes[i].mu.Lock()
	}
	t.epoch++
	if t.epoch == 0 { // uint32 wrap: 0 is the never-used sentinel
		t.epoch = 1
		for i := range t.buckets {
			t.buckets[i] = bucket{}
		}
	}
	for i := range t.stripes {
		t.stripes[i].live = 0
		t.stripes[i].mu.Unlock()
	}
	t.collectMu.Lock()
	t.collect = t.collect[:0]
	t.collectMu.Unlock()
}

// SetCollect turns on digest collection: up to cap of the next stores are
// buffered for DrainCollected; beyond that they are counted as dropped.
// cap 0 disables collection and clears the buffer.
func (t *Table) SetCollect(capEntries int) {
	t.collectMu.Lock()
	t.collectCap.Store(int64(capEntries))
	t.collect = t.collect[:0]
	t.collectMu.Unlock()
}

// collected buffers a fresh store for the digest exchange when collection
// is on. Refreshes of existing records are deliberately not re-collected.
func (t *Table) collected(e Entry) {
	if t.collectCap.Load() == 0 {
		return
	}
	t.collectMu.Lock()
	if max := int(t.collectCap.Load()); max > 0 {
		if len(t.collect) < max {
			t.collect = append(t.collect, e)
		} else {
			t.collectDropped++
		}
	}
	t.collectMu.Unlock()
}

// DrainCollected appends the buffered stores to buf, clears the buffer,
// and returns the result.
func (t *Table) DrainCollected(buf []Entry) []Entry {
	t.collectMu.Lock()
	buf = append(buf, t.collect...)
	t.collect = t.collect[:0]
	t.collectMu.Unlock()
	return buf
}

// Snapshot aggregates the per-stripe counters.
func (t *Table) Snapshot() Stats {
	out := Stats{
		Buckets:  len(t.buckets),
		Budget:   t.budget,
		BytesCap: int64(len(t.buckets)) * bucketBytes,
	}
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		out.Hits += st.hits
		out.Misses += st.misses
		out.Stores += st.stores
		out.Evictions += st.evictions
		out.Stale += st.stale
		out.BytesInUse += st.live * slotBytes
		st.mu.Unlock()
	}
	t.collectMu.Lock()
	out.Dropped = t.collectDropped
	t.collectMu.Unlock()
	return out
}
