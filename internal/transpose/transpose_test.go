package transpose

import (
	"math/rand"
	"sync"
	"testing"
)

func TestSizingRespectsBudget(t *testing.T) {
	for _, budget := range []int64{0, 1, MinBudget, MinBudget + 1, 100_000, 1 << 20, (1 << 20) + 13} {
		tb := New(budget)
		s := tb.Snapshot()
		if s.Buckets&(s.Buckets-1) != 0 {
			t.Fatalf("budget %d: bucket count %d not a power of two", budget, s.Buckets)
		}
		if s.BytesCap > s.Budget {
			t.Fatalf("budget %d: allocated %d bytes over budget %d", budget, s.BytesCap, s.Budget)
		}
		if s.BytesCap*2 <= s.Budget && s.Budget >= 2*MinBudget {
			t.Fatalf("budget %d: allocated only %d bytes (not the largest fitting power of two)", budget, s.BytesCap)
		}
	}
}

func TestProbeStoreSubsumption(t *testing.T) {
	tb := New(MinBudget)
	if tb.Probe(1, 2, 3, 10) {
		t.Fatal("empty table produced a hit")
	}
	tb.Store(1, 2, 3, 10)
	if !tb.Probe(1, 2, 3, 10) {
		t.Fatal("equal-bound duplicate not subsumed")
	}
	if !tb.Probe(1, 2, 3, 11) {
		t.Fatal("worse-bound duplicate not subsumed")
	}
	if tb.Probe(1, 2, 3, 9) {
		t.Fatal("better-bound state wrongly subsumed")
	}
	if tb.Probe(1, 2, 4, 10) {
		t.Fatal("depth mismatch wrongly subsumed")
	}
	if tb.Probe(1, 3, 3, 10) {
		t.Fatal("key mismatch wrongly subsumed")
	}
	// Refresh lowers the stored bound.
	tb.Store(1, 2, 3, 7)
	if !tb.Probe(1, 2, 3, 7) {
		t.Fatal("refreshed bound not applied")
	}
	s := tb.Snapshot()
	if s.Hits != 3 || s.Misses != 4 {
		t.Fatalf("counters hits=%d misses=%d, want 3/4", s.Hits, s.Misses)
	}
	if s.BytesInUse != slotBytes {
		t.Fatalf("BytesInUse = %d, want %d (one live slot)", s.BytesInUse, slotBytes)
	}
}

func TestDepthPreferredReplacement(t *testing.T) {
	tb := New(MinBudget)
	nb := uint64(len(tb.buckets))
	// Three keys colliding into one bucket (same low bits).
	k1, k2, k3 := uint64(5), uint64(5+nb), uint64(5+2*nb)
	tb.Store(k1, 0, 8, 100) // depth 8
	tb.Store(k2, 0, 4, 200) // depth 4 → shallower, takes slot 0
	tb.Store(k3, 0, 6, 300) // bucket full: deeper than slot 0 → replaces slot 1
	if tb.Probe(k1, 0, 8, 100) {
		t.Fatal("deepest entry should have been evicted")
	}
	if !tb.Probe(k2, 0, 4, 200) || !tb.Probe(k3, 0, 6, 300) {
		t.Fatal("surviving entries lost")
	}
	s := tb.Snapshot()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if s.BytesInUse > s.BytesCap {
		t.Fatalf("BytesInUse %d exceeds BytesCap %d", s.BytesInUse, s.BytesCap)
	}
}

func TestResetInvalidatesAndCountsStale(t *testing.T) {
	tb := New(MinBudget)
	tb.Store(1, 2, 3, 10)
	tb.Reset()
	if tb.Probe(1, 2, 3, 10) {
		t.Fatal("entry survived Reset")
	}
	s := tb.Snapshot()
	if s.Stale != 1 {
		t.Fatalf("stale = %d, want 1", s.Stale)
	}
	if s.BytesInUse != 0 {
		t.Fatalf("BytesInUse = %d after Reset, want 0", s.BytesInUse)
	}
	// The slot is reclaimed by the next store.
	tb.Store(9, 9, 1, 1)
	if !tb.Probe(9, 9, 1, 1) {
		t.Fatal("post-reset store lost")
	}
}

func TestCollectionDrainAndDrop(t *testing.T) {
	tb := New(MinBudget)
	tb.SetCollect(2)
	tb.Store(1, 0, 1, 1)
	tb.Store(2, 0, 1, 1)
	tb.Store(3, 0, 1, 1) // over cap → dropped
	tb.Store(1, 0, 1, 1) // refresh → not re-collected
	got := tb.DrainCollected(nil)
	if len(got) != 2 || got[0].Lo != 1 || got[1].Lo != 2 {
		t.Fatalf("drained %v", got)
	}
	if s := tb.Snapshot(); s.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", s.Dropped)
	}
	if again := tb.DrainCollected(nil); len(again) != 0 {
		t.Fatalf("second drain returned %v", again)
	}
	tb2 := New(MinBudget)
	tb2.Import(got)
	if !tb2.Probe(1, 0, 1, 1) || !tb2.Probe(2, 0, 1, 1) {
		t.Fatal("import lost entries")
	}
}

// TestConcurrentMixedUse hammers the table from many goroutines (run under
// -race by the standard test invocation of scripts/check.sh).
func TestConcurrentMixedUse(t *testing.T) {
	tb := New(1 << 16)
	tb.SetCollect(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				lo, hi := rng.Uint64(), rng.Uint64()
				switch i % 8 {
				case 0:
					tb.Reset()
				case 1:
					tb.Snapshot()
				case 2:
					tb.DrainCollected(nil)
				default:
					tb.Store(lo, hi, int32(i%30), int64(i))
					tb.Probe(lo, hi, int32(i%30), int64(i))
				}
			}
		}(int64(w))
	}
	wg.Wait()
	s := tb.Snapshot()
	if s.BytesInUse > s.BytesCap || s.BytesCap > s.Budget {
		t.Fatalf("memory accounting violated: inUse=%d cap=%d budget=%d", s.BytesInUse, s.BytesCap, s.Budget)
	}
}

// TestBytesInUseNeverExceedsBudget fills the table far past capacity and
// checks the structural bound the bbload assertion relies on.
func TestBytesInUseNeverExceedsBudget(t *testing.T) {
	tb := New(MinBudget) // 64 buckets = 128 slots
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		tb.Store(rng.Uint64(), rng.Uint64(), int32(i%40), int64(i))
	}
	s := tb.Snapshot()
	if s.BytesInUse > s.BytesCap || s.BytesCap > s.Budget {
		t.Fatalf("memory accounting violated: inUse=%d cap=%d budget=%d", s.BytesInUse, s.BytesCap, s.Budget)
	}
	if s.Evictions == 0 {
		t.Fatal("overfill produced no evictions")
	}
	if s.BytesInUse != s.BytesCap {
		t.Fatalf("overfilled table not fully live: inUse=%d cap=%d", s.BytesInUse, s.BytesCap)
	}
}
