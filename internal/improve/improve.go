// Package improve is a local-search post-optimizer for complete schedules,
// in the spirit of the related work the paper cites (Abdelzaher & Shin,
// RTSS'95: improving an initial solution rather than searching from
// scratch). It complements the branch-and-bound solver at the opposite end
// of the effort spectrum: given ANY complete schedule — greedy EDF output,
// a truncated B&B incumbent, a hand-written table — it hill-climbs over the
// two decision dimensions of the §4.3 operation:
//
//	reassign: move one task to a different processor, and
//	reorder:  swap two adjacent tasks in the placement sequence
//	          (only when no precedence relates them),
//
// replaying the sequence through the append-only scheduling operation after
// every move. Replays are left-compacting: a task never starts later than
// in the incumbent, so the objective never regresses, and random kicks with
// bounded patience let the search escape shallow local optima while a
// best-so-far copy guarantees monotone output.
package improve

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Options tunes the search. The zero value is usable: 2000 iterations, no
// kicks, seed 1.
type Options struct {
	// MaxIters bounds the number of candidate moves evaluated (default
	// 2000).
	MaxIters int

	// Kicks is the number of random perturbations applied when the climb
	// stalls (default 0: pure hill climbing).
	Kicks int

	// KickLength is the number of random moves per kick (default 3).
	KickLength int

	// Seed drives the move order; a fixed seed makes Improve deterministic.
	Seed int64
}

func (o *Options) fill() {
	if o.MaxIters <= 0 {
		o.MaxIters = 2000
	}
	if o.KickLength <= 0 {
		o.KickLength = 3
	}
}

// Result reports the outcome of one Improve call.
type Result struct {
	// Schedule is the best schedule found (never worse than the input).
	Schedule *sched.Schedule

	// Start and Cost are the input and output maximum lateness.
	Start, Cost taskgraph.Time

	// Moves is the number of candidate moves evaluated; Improvements the
	// number of accepted strict improvements.
	Moves, Improvements int
}

// plan is a mutable (sequence, assignment) encoding of a schedule.
type plan struct {
	order []taskgraph.TaskID
	proc  []platform.Proc // indexed by position in order
}

func (p *plan) clone() plan {
	return plan{
		order: append([]taskgraph.TaskID(nil), p.order...),
		proc:  append([]platform.Proc(nil), p.proc...),
	}
}

// Improve hill-climbs from the given complete, structurally valid schedule.
func Improve(s *sched.Schedule, opts Options) (Result, error) {
	if !s.Complete() {
		return Result{}, fmt.Errorf("improve: schedule is incomplete")
	}
	if err := s.Check(); err != nil {
		return Result{}, fmt.Errorf("improve: invalid input schedule: %w", err)
	}
	opts.fill()
	g, plat := s.Graph, s.Platform
	rng := rand.New(rand.NewSource(opts.Seed))

	// Linearize by start time: a valid readiness order whose replay is
	// left-compacting (every start <= the original start).
	pls := s.Placements()
	sort.Slice(pls, func(i, j int) bool {
		if pls[i].Start != pls[j].Start {
			return pls[i].Start < pls[j].Start
		}
		return pls[i].Task < pls[j].Task
	})
	cur := plan{
		order: make([]taskgraph.TaskID, len(pls)),
		proc:  make([]platform.Proc, len(pls)),
	}
	for i, pl := range pls {
		cur.order[i] = pl.Task
		cur.proc[i] = pl.Proc
	}

	st := sched.NewState(g, plat)
	eval := func(p plan) (taskgraph.Time, bool) {
		st.Reset()
		for i, id := range p.order {
			if !st.Ready(id) {
				return 0, false // precedence-invalid ordering
			}
			st.Place(id, p.proc[i])
		}
		return st.Lmax(), true
	}

	curCost, ok := eval(cur)
	if !ok {
		return Result{}, fmt.Errorf("improve: internal error: start-time order not replayable")
	}
	res := Result{Start: s.Lmax(), Cost: curCost}
	if curCost > res.Start {
		// Cannot happen (left-compaction), but never return a regression.
		return Result{}, fmt.Errorf("improve: internal error: replay worsened the schedule (%d > %d)", curCost, res.Start)
	}
	best := cur.clone()
	bestCost := curCost

	n := len(cur.order)
	kicksLeft := opts.Kicks
	for res.Moves < opts.MaxIters {
		improved := false
		// First-improvement scan in randomized order over the two move
		// families.
		idx := rng.Perm(n)
		for _, i := range idx {
			if res.Moves >= opts.MaxIters {
				break
			}
			// Reassign task at position i to a random different processor
			// (skipped when the task's affinity mask excludes the draw).
			if plat.M > 1 {
				q := platform.Proc(rng.Intn(plat.M))
				if q != cur.proc[i] && plat.Allows(cur.order[i], q) {
					old := cur.proc[i]
					cur.proc[i] = q
					res.Moves++
					if cost, ok := eval(cur); ok && cost < curCost {
						curCost = cost
						improved = true
					} else {
						cur.proc[i] = old
					}
				}
			}
			// Swap with the right neighbour when unrelated.
			if i+1 < n && !g.HasPath(cur.order[i], cur.order[i+1]) {
				cur.order[i], cur.order[i+1] = cur.order[i+1], cur.order[i]
				cur.proc[i], cur.proc[i+1] = cur.proc[i+1], cur.proc[i]
				res.Moves++
				if cost, ok := eval(cur); ok && cost < curCost {
					curCost = cost
					improved = true
				} else {
					cur.order[i], cur.order[i+1] = cur.order[i+1], cur.order[i]
					cur.proc[i], cur.proc[i+1] = cur.proc[i+1], cur.proc[i]
				}
			}
		}
		if curCost < bestCost {
			bestCost = curCost
			best = cur.clone()
			res.Improvements++
		}
		if improved {
			continue
		}
		if kicksLeft == 0 {
			break
		}
		// Kick: random valid perturbation from the best plan.
		cur = best.clone()
		for k := 0; k < opts.KickLength; k++ {
			i := rng.Intn(n)
			if plat.M > 1 && rng.Intn(2) == 0 {
				if q := platform.Proc(rng.Intn(plat.M)); plat.Allows(cur.order[i], q) {
					cur.proc[i] = q
				}
			} else if i+1 < n && !g.HasPath(cur.order[i], cur.order[i+1]) {
				cur.order[i], cur.order[i+1] = cur.order[i+1], cur.order[i]
				cur.proc[i], cur.proc[i+1] = cur.proc[i+1], cur.proc[i]
			}
		}
		if cost, ok := eval(cur); ok {
			curCost = cost
		} else {
			cur = best.clone()
			curCost = bestCost
		}
		kicksLeft--
	}

	// Materialize the best plan.
	st.Reset()
	for i, id := range best.order {
		st.Place(id, best.proc[i])
	}
	res.Schedule = st.Snapshot()
	res.Cost = st.Lmax()
	if res.Cost > res.Start {
		return Result{}, fmt.Errorf("improve: internal error: final cost %d worse than input %d", res.Cost, res.Start)
	}
	return res, nil
}
