package improve

import (
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/deadline"
	"repro/internal/edf"
	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

func smallWorkload(t testing.TB, seed int64) *taskgraph.Graph {
	t.Helper()
	p := gen.Defaults()
	p.NMin, p.NMax = 5, 7
	p.DepthMin, p.DepthMax = 3, 4
	g := gen.New(p, seed).Graph()
	if err := deadline.Assign(g, 1.5, deadline.EqualSlack); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestImproveNeverRegresses(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		g := smallWorkload(t, seed)
		for _, m := range []int{1, 2, 3} {
			plat := platform.New(m)
			start, err := edf.Schedule(g, plat)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Improve(start.Schedule, Options{Seed: seed, Kicks: 2})
			if err != nil {
				t.Fatalf("seed %d m=%d: %v", seed, m, err)
			}
			if res.Cost > res.Start {
				t.Fatalf("seed %d m=%d: regressed %d → %d", seed, m, res.Start, res.Cost)
			}
			if res.Schedule == nil || !res.Schedule.Complete() {
				t.Fatalf("seed %d m=%d: no complete schedule", seed, m)
			}
			if err := res.Schedule.Check(); err != nil {
				t.Fatalf("seed %d m=%d: invalid schedule: %v", seed, m, err)
			}
			if res.Schedule.Lmax() != res.Cost {
				t.Fatalf("seed %d m=%d: reported cost %d != schedule Lmax %d",
					seed, m, res.Cost, res.Schedule.Lmax())
			}
		}
	}
}

func TestImproveBoundedByOptimum(t *testing.T) {
	var reachedOpt, total int
	for seed := int64(30); seed <= 50; seed++ {
		g := smallWorkload(t, seed)
		plat := platform.New(2)
		opt, err := bruteforce.Solve(g, plat)
		if err != nil {
			t.Fatal(err)
		}
		start, err := edf.Schedule(g, plat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Improve(start.Schedule, Options{Seed: seed, Kicks: 4, MaxIters: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost < opt.Cost {
			t.Fatalf("seed %d: improver beat the optimum: %d < %d", seed, res.Cost, opt.Cost)
		}
		total++
		if res.Cost == opt.Cost {
			reachedOpt++
		}
	}
	// Local search from EDF should close the gap on a healthy majority of
	// these small instances (EDF already optimal on many).
	if reachedOpt*2 < total {
		t.Fatalf("improver reached the optimum on only %d of %d instances", reachedOpt, total)
	}
}

func TestImproveDeterministicWithSeed(t *testing.T) {
	g := smallWorkload(t, 99)
	plat := platform.New(2)
	start, err := edf.Schedule(g, plat)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Improve(start.Schedule, Options{Seed: 7, Kicks: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Improve(start.Schedule, Options{Seed: 7, Kicks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Moves != b.Moves || a.Improvements != b.Improvements {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestImproveFixesObviouslyBadSchedule(t *testing.T) {
	// Serialize independent tasks on one processor of a 4-processor machine
	// and let the improver spread them.
	g := taskgraph.Independent(6, 10)
	plat := platform.New(4)
	st := sched.NewState(g, plat)
	for i := 0; i < 6; i++ {
		st.Place(taskgraph.TaskID(i), 0)
	}
	bad := st.Snapshot()

	res, err := Improve(bad, Options{Seed: 3, Kicks: 3, MaxIters: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= res.Start {
		t.Fatalf("no improvement on a trivially improvable schedule: %d → %d", res.Start, res.Cost)
	}
	// Optimal: ceil(6/4) tasks per proc → makespan 20, lateness 20−240.
	want, err := bruteforce.Solve(g, plat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != want.Cost {
		t.Logf("note: local optimum %d vs global %d (acceptable for hill climbing)", res.Cost, want.Cost)
	}
}

func TestImproveOnBnBTruncatedSearch(t *testing.T) {
	// The intended pipeline: a DF-approximate B&B pass, then local search.
	g := smallWorkload(t, 123)
	plat := platform.New(3)
	approx, err := core.Solve(g, plat, core.Params{Branching: core.BranchDF})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Improve(approx.Schedule, Options{Seed: 1, Kicks: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.Solve(g, plat, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < opt.Cost {
		t.Fatalf("improver beat the proven optimum: %d < %d", res.Cost, opt.Cost)
	}
	if res.Cost > approx.Cost {
		t.Fatalf("improver regressed the DF schedule: %d > %d", res.Cost, approx.Cost)
	}
}

func TestImproveRejectsBadInput(t *testing.T) {
	g := taskgraph.Diamond()
	plat := platform.New(2)
	incomplete := sched.NewSchedule(g, plat)
	if _, err := Improve(incomplete, Options{}); err == nil {
		t.Fatal("incomplete schedule accepted")
	}
	invalid := sched.NewSchedule(g, plat)
	invalid.Set(0, 0, 0)
	invalid.Set(1, 0, 0)
	invalid.Set(2, 0, 2)
	invalid.Set(3, 0, 7)
	if _, err := Improve(invalid, Options{}); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}

func TestImproveSingleTask(t *testing.T) {
	g := taskgraph.New(1)
	g.AddTask(taskgraph.Task{Exec: 5, Deadline: 10})
	st := sched.NewState(g, platform.New(2))
	st.Place(0, 1)
	res, err := Improve(st.Snapshot(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != -5 {
		t.Fatalf("cost %d, want -5", res.Cost)
	}
}
