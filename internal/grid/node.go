package grid

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/peer"
)

// Store is the local result cache a Node reads through and fills. The
// server's LRU satisfies it; bodies are opaque response bytes keyed by
// the canonical cache key.
type Store interface {
	Get(key string) ([]byte, bool)
	Put(key string, body []byte)
}

// NodeConfig wires one replica into the grid.
type NodeConfig struct {
	// Self is this replica's advertised base URL — its ring identity.
	Self string

	// Peers are the other replicas' base URLs. The fleet is static
	// configuration; liveness is dynamic (failed RPCs mark a peer down,
	// a background probe brings it back).
	Peers []string

	// VNodes per member (default DefaultVNodes).
	VNodes int

	// FlightTTL bounds a single-flight fill claim: a granted fill that
	// never comes back stops blocking new claimants after this long
	// (default 75s, above the server's max solve budget).
	FlightTTL time.Duration

	// FetchWait is the default patience of a read-through get blocked on
	// an open flight (default 10s); a request context's deadline wins
	// when shorter.
	FetchWait time.Duration

	// ProbeInterval is how often down peers are re-probed (default 2s).
	ProbeInterval time.Duration

	// Client is the HTTP client for peer RPCs. Default has no global
	// timeout: flight-blocked gets legitimately hold the line, and every
	// call is bounded by its context instead.
	Client *http.Client

	// Logf, when non-nil, receives membership diagnostics.
	Logf func(format string, args ...any)
}

// Node is one replica's view of the cache grid: the live ring, the
// single-flight table for keys it owns, and clients to its peers.
//
// Ownership protocol, from the requesting replica's side (the server's
// request path):
//
//  1. owner := node.Owner(key); if owner is self (or the ring is
//     empty), serve locally through the local cache's singleflight.
//  2. otherwise Fetch from the owner: a hit returns the cached body; a
//     miss means this replica was granted the fill claim (or the owner
//     is down) — solve locally, respond, and FillBack the body to the
//     owner asynchronously.
//
// From the owning replica's side: a get for a present key returns it; a
// get for an absent key with no open flight opens one and grants the
// fill to the caller; a get finding an open flight blocks (up to the
// caller's patience) for the fill, then serves it. Racing fills are
// benign by construction — cached bodies are deterministic functions of
// the key, so last-put-wins never changes observable bytes.
type Node struct {
	cfg  NodeConfig
	self string

	mu      sync.Mutex
	store   Store
	down    map[string]bool
	ring    *Ring
	flights map[string]*flight
	clients map[string]*peer.Client
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup

	peerHits      atomic.Int64
	peerMisses    atomic.Int64
	fillsGranted  atomic.Int64
	fillBacksSent atomic.Int64
	fillBacksRecv atomic.Int64
	fetchErrors   atomic.Int64
	flightWaits   atomic.Int64
	ringRebuilds  atomic.Int64
}

// flight is one open single-flight fill claim on an owned key.
type flight struct {
	filler   string // replica granted the fill, for diagnostics
	deadline time.Time
	done     chan struct{}
}

// NewNode builds a replica node and starts its down-peer prober (when
// it has peers). Call Bind before serving, Close on shutdown.
func NewNode(cfg NodeConfig) *Node {
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.FlightTTL <= 0 {
		cfg.FlightTTL = 75 * time.Second
	}
	if cfg.FetchWait <= 0 {
		cfg.FetchWait = 10 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	n := &Node{
		cfg:     cfg,
		self:    cfg.Self,
		down:    map[string]bool{},
		flights: map[string]*flight{},
		clients: map[string]*peer.Client{},
		stop:    make(chan struct{}),
	}
	n.rebuildLocked()
	if len(cfg.Peers) > 0 {
		n.wg.Add(1)
		go n.probeLoop()
	}
	return n
}

// Bind attaches the local result store the node reads through and fills.
func (n *Node) Bind(store Store) {
	n.mu.Lock()
	n.store = store
	n.mu.Unlock()
}

// Close stops the prober, waits for in-flight fill-backs, and drops the
// peer transport's idle connections (their keep-alive goroutines would
// otherwise outlive the node and read as a shutdown leak).
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
	n.cfg.Client.CloseIdleConnections()
}

// Self returns this replica's ring identity.
func (n *Node) Self() string { return n.self }

// Owner returns the live ring owner of key ("" on an empty ring, which
// callers treat as self).
func (n *Node) Owner(key string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring.Owner(key)
}

// Members returns the live member list (self plus peers not marked
// down), sorted.
func (n *Node) Members() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring.Members()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// rebuildLocked rebuilds the ring over self + live peers. Callers hold
// n.mu (NewNode calls it before the node is shared).
func (n *Node) rebuildLocked() {
	members := make([]string, 0, 1+len(n.cfg.Peers))
	members = append(members, n.self)
	for _, p := range n.cfg.Peers {
		if !n.down[p] {
			members = append(members, p)
		}
	}
	n.ring = NewRing(members, n.cfg.VNodes)
	n.ringRebuilds.Add(1)
}

// markDown removes a peer from the live ring after a failed RPC; its
// key range re-owns onto the survivors until a probe brings it back.
func (n *Node) markDown(url string) {
	if url == n.self {
		return
	}
	n.mu.Lock()
	if n.down[url] {
		n.mu.Unlock()
		return
	}
	n.down[url] = true
	n.rebuildLocked()
	n.mu.Unlock()
	n.logf("grid: peer %s down, ring re-owned across survivors", url)
}

func (n *Node) client(url string) *peer.Client {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := n.clients[url]
	if c == nil {
		c = &peer.Client{Base: url, HTTP: n.cfg.Client}
		n.clients[url] = c
	}
	return c
}

// probeLoop re-probes down peers until Close.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
			n.mu.Lock()
			var probe []string
			for url, d := range n.down {
				if d {
					probe = append(probe, url)
				}
			}
			n.mu.Unlock()
			sort.Strings(probe)
			for _, url := range probe {
				ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeInterval)
				var resp PingResponse
				err := n.client(url).Post(ctx, "/grid/v1/ping", PingRequest{From: n.self}, &resp)
				cancel()
				if err != nil {
					continue
				}
				n.mu.Lock()
				delete(n.down, url)
				n.rebuildLocked()
				n.mu.Unlock()
				n.logf("grid: peer %s back up, ring re-owned", url)
			}
		}
	}
}

// Fetch asks the owner replica for key. found=true carries the cached
// body (a peer hit). found=false means this replica should solve the
// key itself — either the owner granted it the fill claim or the owner
// is unreachable (then also marked down) — and FillBack afterwards.
func (n *Node) Fetch(ctx context.Context, owner, key string) (body []byte, found bool) {
	wait := n.cfg.FetchWait
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl) - 250*time.Millisecond; rem < wait {
			wait = rem
		}
	}
	if wait <= 0 {
		return nil, false
	}
	// The RPC deadline leaves slack past the server-side flight wait so
	// a just-filled body still makes it back.
	cctx, cancel := context.WithTimeout(ctx, wait+2*time.Second)
	defer cancel()
	var resp GetResponse
	err := n.client(owner).Post(cctx, "/grid/v1/get", GetRequest{
		Key: key, From: n.self, WaitMS: wait.Milliseconds(),
	}, &resp)
	if err != nil {
		n.fetchErrors.Add(1)
		n.markDown(owner)
		return nil, false
	}
	if resp.Found {
		n.peerHits.Add(1)
		return resp.Body, true
	}
	n.peerMisses.Add(1)
	return nil, false
}

// FillBack asynchronously ships a freshly solved body to the owner,
// completing the fill claim Fetch was granted. Best-effort: a failure
// marks the owner down, and the claim lapses via FlightTTL.
func (n *Node) FillBack(owner, key string, body []byte) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.wg.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		var resp PutResponse
		err := n.client(owner).Post(ctx, "/grid/v1/put", PutRequest{
			Key: key, From: n.self, Body: body,
		}, &resp)
		if err != nil {
			n.fetchErrors.Add(1)
			n.markDown(owner)
			return
		}
		n.fillBacksSent.Add(1)
	}()
}

// ---- HTTP surface (the owner side) ----

// Handler returns the peer protocol endpoints under /grid/v1/.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/grid/v1/get", n.handleGet)
	mux.HandleFunc("/grid/v1/put", n.handlePut)
	mux.HandleFunc("/grid/v1/ping", n.handlePing)
	return mux
}

func (n *Node) handleGet(w http.ResponseWriter, r *http.Request) {
	req, ok := peer.DecodeJSON[GetRequest](w, r)
	if !ok {
		return
	}
	n.mu.Lock()
	store := n.store
	n.mu.Unlock()
	if store == nil || req.Key == "" {
		peer.WriteError(w, http.StatusServiceUnavailable, "grid: node not bound")
		return
	}
	if body, ok := store.Get(req.Key); ok {
		peer.WriteJSON(w, GetResponse{Found: true, Body: body})
		return
	}

	now := time.Now()
	n.mu.Lock()
	fl := n.flights[req.Key]
	if fl == nil || now.After(fl.deadline) {
		// No live flight: grant the fill claim to the caller. An expired
		// flight is replaced — its filler died or forgot; the new claim
		// races any zombie fill harmlessly.
		n.flights[req.Key] = &flight{
			filler:   req.From,
			deadline: now.Add(n.cfg.FlightTTL),
			done:     make(chan struct{}),
		}
		n.mu.Unlock()
		n.fillsGranted.Add(1)
		peer.WriteJSON(w, GetResponse{Fill: true})
		return
	}
	ch := fl.done
	n.mu.Unlock()

	// A fill is in flight: block for it up to the caller's patience
	// (capped by the claim's remaining TTL).
	n.flightWaits.Add(1)
	wait := n.cfg.FetchWait
	if req.WaitMS > 0 {
		wait = time.Duration(req.WaitMS) * time.Millisecond
	}
	if rem := time.Until(fl.deadline); rem < wait {
		wait = rem
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ch:
		if body, ok := store.Get(req.Key); ok {
			peer.WriteJSON(w, GetResponse{Found: true, Body: body})
			return
		}
		// The flight completed without a body (filler errored): let the
		// caller solve it.
		peer.WriteJSON(w, GetResponse{Fill: true})
	case <-timer.C:
		// Patience exhausted with the claim still open: the caller races
		// the slow filler; first fill-back wins and both bodies are
		// identical by construction.
		peer.WriteJSON(w, GetResponse{Fill: true})
	}
}

func (n *Node) handlePut(w http.ResponseWriter, r *http.Request) {
	req, ok := peer.DecodeJSON[PutRequest](w, r)
	if !ok {
		return
	}
	n.mu.Lock()
	store := n.store
	fl := n.flights[req.Key]
	delete(n.flights, req.Key)
	n.mu.Unlock()
	stored := false
	if store != nil && req.Key != "" && len(req.Body) > 0 {
		store.Put(req.Key, req.Body)
		stored = true
		n.fillBacksRecv.Add(1)
	}
	if fl != nil {
		close(fl.done)
	}
	peer.WriteJSON(w, PutResponse{Stored: stored})
}

func (n *Node) handlePing(w http.ResponseWriter, r *http.Request) {
	if _, ok := peer.DecodeJSON[PingRequest](w, r); !ok {
		return
	}
	peer.WriteJSON(w, PingResponse{OK: true, Self: n.self})
}

// ---- wire types ----

// GetRequest is a read-through get against a key's ring owner. From
// names the requesting replica (it becomes the filler if the owner
// grants the claim); WaitMS is the caller's patience for an open
// flight.
type GetRequest struct {
	Key    string `json:"key"`
	From   string `json:"from,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`
}

// GetResponse: Found carries the body; otherwise Fill tells the caller
// it holds the fill claim (solve locally, then put the body back).
type GetResponse struct {
	Found bool   `json:"found"`
	Fill  bool   `json:"fill,omitempty"`
	Body  []byte `json:"body,omitempty"`
}

// PutRequest fills a solved body back to the key's owner, completing
// the outstanding flight.
type PutRequest struct {
	Key  string `json:"key"`
	From string `json:"from,omitempty"`
	Body []byte `json:"body"`
}

// PutResponse acknowledges a fill-back.
type PutResponse struct {
	Stored bool `json:"stored"`
}

// PingRequest is the liveness probe for a down peer.
type PingRequest struct {
	From string `json:"from,omitempty"`
}

// PingResponse confirms liveness and echoes the peer's identity.
type PingResponse struct {
	OK   bool   `json:"ok"`
	Self string `json:"self,omitempty"`
}

// NodeSnapshot is the grid node's gauge block in /metrics.
type NodeSnapshot struct {
	Self          string   `json:"self"`
	Members       []string `json:"members"`
	PeersDown     []string `json:"peers_down,omitempty"`
	OpenFlights   int      `json:"open_flights"`
	PeerHits      int64    `json:"peer_hits"`
	PeerMisses    int64    `json:"peer_misses"`
	FillsGranted  int64    `json:"fills_granted"`
	FillBacksSent int64    `json:"fill_backs_sent"`
	FillBacksRecv int64    `json:"fill_backs_received"`
	FetchErrors   int64    `json:"fetch_errors"`
	FlightWaits   int64    `json:"flight_waits"`
	RingRebuilds  int64    `json:"ring_rebuilds"`
}

// Snapshot returns the node's counters and membership view.
func (n *Node) Snapshot() NodeSnapshot {
	n.mu.Lock()
	var downs []string
	for url, d := range n.down {
		if d {
			downs = append(downs, url)
		}
	}
	open := len(n.flights)
	members := n.ring.Members()
	n.mu.Unlock()
	sort.Strings(downs)
	return NodeSnapshot{
		Self:          n.self,
		Members:       members,
		PeersDown:     downs,
		OpenFlights:   open,
		PeerHits:      n.peerHits.Load(),
		PeerMisses:    n.peerMisses.Load(),
		FillsGranted:  n.fillsGranted.Load(),
		FillBacksSent: n.fillBacksSent.Load(),
		FillBacksRecv: n.fillBacksRecv.Load(),
		FetchErrors:   n.fetchErrors.Load(),
		FlightWaits:   n.flightWaits.Load(),
		RingRebuilds:  n.ringRebuilds.Load(),
	}
}
