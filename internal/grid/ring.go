package grid

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member. 96 points per
// replica keeps the max/min key-share imbalance within roughly ±30% for
// small fleets while membership changes stay cheap to apply.
const DefaultVNodes = 96

// Ring is an immutable consistent-hash ring: each member contributes
// VNodes pseudo-random points on a 64-bit circle, and a key belongs to
// the member owning the first point at or clockwise of the key's hash.
//
// Invariants (tested in ring_test.go):
//
//   - Determinism: the same member set (any order) builds the same ring,
//     so every replica computes the same owner for every key without
//     coordination.
//   - Minimal movement: adding a member reassigns only keys that move TO
//     the joiner; removing one reassigns only the keys it owned. Keys
//     never shuffle between surviving members.
//   - Balance: with v vnodes per member the expected share is 1/n, with
//     spread shrinking as v grows.
type Ring struct {
	points  []ringPoint
	members []string
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over the member names (base URLs). vnodes <= 0
// picks DefaultVNodes. Duplicate members collapse; an empty member set
// yields a ring whose Owner is always "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := map[string]bool{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by name so every replica
		// still agrees on the owner.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the top arc
	}
	return r.points[i].member
}

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// hash64 is FNV-1a with a splitmix64 finalizer. Raw FNV on the short,
// highly similar member#vnode strings leaves enough structure in the
// high bits to skew point placement badly; the finalizer's avalanche
// restores a uniform scatter. Cache keys already embed a SHA-256, so
// the ring hash only needs to scatter, not to resist collisions.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
