package grid

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

type mapStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: map[string][]byte{}} }

func (s *mapStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	return b, ok
}

func (s *mapStore) Put(key string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), body...)
}

// serveNode binds a store to a fresh node and serves its peer protocol
// on a loopback listener. Returns the node, its URL, and a teardown.
func serveNode(t *testing.T, cfg NodeConfig, store Store) (*Node, string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	if cfg.Self == "" {
		cfg.Self = url
	}
	n := NewNode(cfg)
	n.Bind(store)
	hs := &http.Server{Handler: n.Handler()}
	done := make(chan struct{})
	go func() { defer close(done); _ = hs.Serve(ln) }()
	return n, url, func() {
		_ = hs.Close()
		<-done
		n.Close()
	}
}

func TestNodeFillGrantAndReadThrough(t *testing.T) {
	store := newMapStore()
	owner, ownerURL, stop := serveNode(t, NodeConfig{}, store)
	defer stop()

	req := NewNode(NodeConfig{Self: "http://requester", Peers: []string{ownerURL}, ProbeInterval: time.Hour})
	defer req.Close()

	ctx := context.Background()
	key := "solve|abc|m=3"
	if body, found := req.Fetch(ctx, ownerURL, key); found {
		t.Fatalf("cold fetch found %q", body)
	}
	if got := owner.Snapshot().FillsGranted; got != 1 {
		t.Fatalf("fills granted = %d, want 1", got)
	}

	want := []byte(`{"cost":42}`)
	req.FillBack(ownerURL, key, want)
	waitFor(t, "fill-back to land", func() bool { _, ok := store.Get(key); return ok })

	body, found := req.Fetch(ctx, ownerURL, key)
	if !found || !bytes.Equal(body, want) {
		t.Fatalf("warm fetch: found=%v body=%q", found, body)
	}
	snap := req.Snapshot()
	if snap.PeerHits != 1 || snap.PeerMisses != 1 || snap.FillBacksSent != 1 {
		t.Fatalf("requester counters %+v", snap)
	}
}

// TestNodeFlightBlocksSecondFetcher: while one replica holds the fill
// claim, a second fetcher for the same key blocks on the open flight
// and is served the body the moment the fill-back lands — one solve,
// two consumers.
func TestNodeFlightBlocksSecondFetcher(t *testing.T) {
	store := newMapStore()
	owner, ownerURL, stop := serveNode(t, NodeConfig{}, store)
	defer stop()

	r1 := NewNode(NodeConfig{Self: "http://r1", Peers: []string{ownerURL}, ProbeInterval: time.Hour})
	defer r1.Close()
	r2 := NewNode(NodeConfig{Self: "http://r2", Peers: []string{ownerURL}, ProbeInterval: time.Hour, FetchWait: 10 * time.Second})
	defer r2.Close()

	ctx := context.Background()
	key := "solve|flight|m=3"
	if _, found := r1.Fetch(ctx, ownerURL, key); found {
		t.Fatal("cold fetch found")
	}

	type fetched struct {
		body  []byte
		found bool
	}
	got := make(chan fetched, 1)
	go func() {
		b, ok := r2.Fetch(ctx, ownerURL, key)
		got <- fetched{b, ok}
	}()
	select {
	case f := <-got:
		t.Fatalf("second fetch returned early: %+v", f)
	case <-time.After(150 * time.Millisecond):
	}
	waitFor(t, "flight wait to register", func() bool { return owner.Snapshot().FlightWaits == 1 })

	want := []byte(`{"cost":7}`)
	r1.FillBack(ownerURL, key, want)
	select {
	case f := <-got:
		if !f.found || !bytes.Equal(f.body, want) {
			t.Fatalf("blocked fetch got found=%v body=%q", f.found, f.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked fetch never unblocked after fill-back")
	}
}

// TestNodeExpiredFlightRegrants: a fill claim whose holder never comes
// back lapses after FlightTTL; the next fetcher gets a fresh claim.
func TestNodeExpiredFlightRegrants(t *testing.T) {
	store := newMapStore()
	owner, ownerURL, stop := serveNode(t, NodeConfig{FlightTTL: 30 * time.Millisecond}, store)
	defer stop()

	req := NewNode(NodeConfig{Self: "http://r", Peers: []string{ownerURL}, ProbeInterval: time.Hour})
	defer req.Close()

	ctx := context.Background()
	key := "solve|zombie|m=3"
	if _, found := req.Fetch(ctx, ownerURL, key); found {
		t.Fatal("cold fetch found")
	}
	time.Sleep(60 * time.Millisecond)
	if _, found := req.Fetch(ctx, ownerURL, key); found {
		t.Fatal("post-expiry fetch found")
	}
	if got := owner.Snapshot().FillsGranted; got != 2 {
		t.Fatalf("fills granted = %d, want regrant after TTL", got)
	}
}

// TestNodeOwnerDownReowns: a failed fetch marks the owner down and the
// ring immediately re-owns its key range onto the survivors.
func TestNodeOwnerDownReowns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	n := NewNode(NodeConfig{Self: "http://self", Peers: []string{deadURL}, ProbeInterval: time.Hour})
	defer n.Close()
	if len(n.Members()) != 2 {
		t.Fatalf("members = %v", n.Members())
	}

	if _, found := n.Fetch(context.Background(), deadURL, "k"); found {
		t.Fatal("fetch from dead peer found")
	}
	members := n.Members()
	if len(members) != 1 || members[0] != "http://self" {
		t.Fatalf("after failure members = %v, want only self", members)
	}
	if n.Owner("any-key") != "http://self" {
		t.Fatal("self must own the whole ring with the peer down")
	}
	snap := n.Snapshot()
	if snap.FetchErrors != 1 || len(snap.PeersDown) != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}

// TestNodeProbeRecovery: a down peer that answers pings again rejoins
// the ring automatically.
func TestNodeProbeRecovery(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	peerURL := "http://" + addr
	ln.Close()

	n := NewNode(NodeConfig{Self: "http://self", Peers: []string{peerURL}, ProbeInterval: 20 * time.Millisecond})
	defer n.Close()
	if _, found := n.Fetch(context.Background(), peerURL, "k"); found {
		t.Fatal("dead fetch found")
	}
	if len(n.Members()) != 1 {
		t.Fatal("peer not marked down")
	}

	// Resurrect the peer on the same address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	peerNode := NewNode(NodeConfig{Self: peerURL, ProbeInterval: time.Hour})
	peerNode.Bind(newMapStore())
	defer peerNode.Close()
	hs := &http.Server{Handler: peerNode.Handler()}
	done := make(chan struct{})
	go func() { defer close(done); _ = hs.Serve(ln2) }()
	defer func() { _ = hs.Close(); <-done }()

	waitFor(t, "probe to restore the peer", func() bool { return len(n.Members()) == 2 })
}

func TestNodeGetUnboundIsUnavailable(t *testing.T) {
	_, url, stop := serveNode(t, NodeConfig{}, nil)
	defer stop()
	req := NewNode(NodeConfig{Self: "http://r", Peers: []string{url}, ProbeInterval: time.Hour})
	defer req.Close()
	if _, found := req.Fetch(context.Background(), url, "k"); found {
		t.Fatal("unbound node served a body")
	}
	// The 503 counts as a fetch error and (conservatively) marks the
	// peer down; the prober will restore it once it can serve.
	if req.Snapshot().FetchErrors != 1 {
		t.Fatalf("snapshot %+v", req.Snapshot())
	}
}
