package grid

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// The real key space embeds a SHA-256; pseudo-random strings are
		// representative enough for share measurement.
		keys[i] = fmt.Sprintf("solve|%016x|m=3", i*2654435761)
	}
	return keys
}

func TestRingDeterministicAndOrderInvariant(t *testing.T) {
	a := NewRing([]string{"r1", "r2", "r3"}, 64)
	b := NewRing([]string{"r3", "r1", "r2", "r1"}, 64)
	for _, k := range ringKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("member order changed ownership of %q: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 0).Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	one := NewRing([]string{"only"}, 0)
	for _, k := range ringKeys(100) {
		if one.Owner(k) != "only" {
			t.Fatal("single-member ring must own everything")
		}
	}
}

// TestRingBalance checks the share bounds across N replicas: with the
// default vnode count no member's share may stray past a factor of 2
// from the ideal 1/N, and the max/min spread stays under 2x.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{2, 3, 4, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://replica-%d:8080", i)
		}
		r := NewRing(members, 0)
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(counts))
		}
		ideal := float64(len(keys)) / float64(n)
		lo, hi := len(keys), 0
		for m, c := range counts {
			if share := float64(c) / ideal; share < 0.5 || share > 2.0 {
				t.Errorf("n=%d: member %s share %.2fx ideal, outside [0.5, 2.0]", n, m, share)
			}
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if spread := float64(hi) / float64(lo); spread > 2.0 {
			t.Errorf("n=%d: max/min share spread %.2f > 2.0", n, spread)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing contract: a join
// moves keys only TO the joiner (roughly its fair share), a leave moves
// only the leaver's keys, and no key ever shuffles between surviving
// members.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(10000)
	base := []string{"http://a", "http://b", "http://c"}
	before := NewRing(base, 0)

	joined := NewRing(append(append([]string(nil), base...), "http://d"), 0)
	moved := 0
	for _, k := range keys {
		was, now := before.Owner(k), joined.Owner(k)
		if was != now {
			moved++
			if now != "http://d" {
				t.Fatalf("join: key %q moved %s -> %s, not to the joiner", k, was, now)
			}
		}
	}
	if frac := float64(moved) / float64(len(keys)); frac < 0.10 || frac > 0.45 {
		t.Errorf("join moved %.1f%% of keys; expected near the fair share 25%%", 100*frac)
	}

	left := NewRing([]string{"http://a", "http://b"}, 0)
	moved = 0
	for _, k := range keys {
		was, now := before.Owner(k), left.Owner(k)
		if was == "http://c" {
			moved++
			continue // the leaver's keys must land somewhere among survivors
		}
		if was != now {
			t.Fatalf("leave: surviving key %q shuffled %s -> %s", k, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("leave: leaver owned no keys?")
	}
}
