package grid

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/peer"
)

// ErrOverload is returned by Acquire when the tenant's queue quota is
// full; the HTTP layer maps it to 429 + a live Retry-After.
var ErrOverload = errors.New("grid: overloaded: tenant queue full")

// ErrDraining is returned to queued work when the server starts
// draining; the HTTP layer maps it to 503.
var ErrDraining = errors.New("grid: draining: not accepting queued work")

// ErrUnknownTenant is returned for a tenant name outside the configured
// set; the HTTP layer maps it to 400.
var ErrUnknownTenant = errors.New("grid: unknown tenant")

// DefaultTenant is the admission class of requests that carry no
// X-Tenant header. It always exists (weight 1 unless configured).
const DefaultTenant = "default"

// Rings bounding per-tenant history: queue-wait samples and completion
// timestamps (the live service-rate estimate behind Retry-After).
const (
	waitSampleCap = 64
	doneSampleCap = 64

	// rateWindow is how far back completions count toward a tenant's
	// live service rate.
	rateWindow = 30 * time.Second

	// retryAfterMax caps the Retry-After hint; beyond this the client
	// should treat the tenant as effectively down, not schedule a retry.
	retryAfterMax = 600
)

// WFQConfig tunes the admission layer.
type WFQConfig struct {
	// Workers is the number of concurrent service slots (default 1).
	Workers int

	// Tenants are the admission classes. A DefaultTenant entry is added
	// automatically when absent so untagged requests always have a home.
	Tenants []Tenant

	// DefaultQueueCap is the per-tenant waiting-line quota applied when
	// a Tenant.QueueCap is zero (default 64).
	DefaultQueueCap int

	// FallbackRetryS is the Retry-After hint (seconds) used before a
	// tenant has any observed service rate (default 1).
	FallbackRetryS int
}

// WFQ is weighted fair queueing over per-tenant request queues —
// start-time fair queueing with unit request cost. Each arriving
// request gets a virtual start tag max(V, lastFinish(tenant)) and a
// finish tag start + 1/weight; free slots always serve the queued
// request with the smallest finish tag, and V advances to the start tag
// of the request entering service. Under saturation tenant throughputs
// converge to the weight ratio regardless of arrival order; an idle
// tenant's backlog is bounded by its own queue quota, never by another
// tenant's burst.
type WFQ struct {
	cfg WFQConfig

	mu       sync.Mutex
	virtual  float64
	running  int
	draining bool
	tenants  map[string]*tenantState
	names    []string // snapshot/scan order: config order, default last if implicit

	started time.Time
	busy    time.Duration // total in-service time across tenants
}

type tenantState struct {
	cfg      Tenant
	queueCap int

	lastFinish float64
	queue      []*waiter
	running    int

	admitted int64
	served   int64
	rejected int64
	busy     time.Duration

	waits    []float64 // queue-wait seconds, ring
	waitNext int
	done     []time.Time // completion timestamps, ring
	doneNext int
}

type waiter struct {
	ts            *tenantState
	start, finish float64
	enqueued      time.Time
	grantedAt     time.Time
	granted       bool
	err           error // set before ready closes on drain rejection
	ready         chan struct{}
}

// NewWFQ builds the admission layer. Zero-value config fields pick the
// documented defaults.
func NewWFQ(cfg WFQConfig) *WFQ {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.DefaultQueueCap <= 0 {
		cfg.DefaultQueueCap = 64
	}
	if cfg.FallbackRetryS <= 0 {
		cfg.FallbackRetryS = 1
	}
	q := &WFQ{cfg: cfg, tenants: map[string]*tenantState{}, started: time.Now()}
	for _, t := range cfg.Tenants {
		if t.Weight <= 0 {
			t.Weight = 1
		}
		if _, dup := q.tenants[t.Name]; dup || t.Name == "" {
			continue
		}
		ts := &tenantState{cfg: t, queueCap: t.QueueCap}
		if ts.queueCap <= 0 {
			ts.queueCap = cfg.DefaultQueueCap
		}
		q.tenants[t.Name] = ts
		q.names = append(q.names, t.Name)
	}
	if _, ok := q.tenants[DefaultTenant]; !ok {
		q.tenants[DefaultTenant] = &tenantState{
			cfg:      Tenant{Name: DefaultTenant, Weight: 1},
			queueCap: cfg.DefaultQueueCap,
		}
		q.names = append(q.names, DefaultTenant)
	}
	return q
}

// Resolve maps a request's tenant header to an admission class: the
// empty string is the default tenant, anything else must be configured.
func (q *WFQ) Resolve(name string) (string, bool) {
	if name == "" {
		return DefaultTenant, true
	}
	q.mu.Lock()
	_, ok := q.tenants[name]
	q.mu.Unlock()
	return name, ok
}

// Acquire claims a service slot for the tenant, waiting in its bounded
// queue when all slots are busy. The returned release function must be
// called exactly once. Errors: ErrUnknownTenant, ErrOverload (quota
// full), ErrDraining, or ctx's error.
func (q *WFQ) Acquire(ctx context.Context, tenant string) (release func(), err error) {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return nil, ErrDraining
	}
	ts := q.tenants[tenant]
	if ts == nil {
		q.mu.Unlock()
		return nil, ErrUnknownTenant
	}
	ts.admitted++
	if len(ts.queue) >= ts.queueCap {
		ts.rejected++
		q.mu.Unlock()
		return nil, ErrOverload
	}
	w := &waiter{ts: ts, enqueued: time.Now(), ready: make(chan struct{})}
	w.start = math.Max(q.virtual, ts.lastFinish)
	w.finish = w.start + 1/ts.cfg.Weight
	ts.lastFinish = w.finish
	ts.queue = append(ts.queue, w)
	q.dispatchLocked()
	q.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		return q.releaseFunc(w), nil
	case <-ctx.Done():
		q.mu.Lock()
		if !w.granted {
			// Still queued: withdraw. The tenant's lastFinish stays
			// advanced — a canceled request forfeits its slot in virtual
			// time, which only ever penalizes the canceling tenant.
			for i, qa := range ts.queue {
				if qa == w {
					ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
					break
				}
			}
			q.mu.Unlock()
			return nil, ctx.Err()
		}
		q.mu.Unlock()
		// Granted in the race with cancellation: give the slot back.
		q.releaseFunc(w)()
		return nil, ctx.Err()
	}
}

// dispatchLocked fills free slots with the smallest-finish-tag queued
// request across tenants. Callers hold q.mu.
func (q *WFQ) dispatchLocked() {
	for q.running < q.cfg.Workers {
		var best *tenantState
		for _, name := range q.names {
			ts := q.tenants[name]
			if len(ts.queue) == 0 {
				continue
			}
			if best == nil || ts.queue[0].finish < best.queue[0].finish {
				best = ts
			}
		}
		if best == nil {
			return
		}
		w := best.queue[0]
		best.queue = best.queue[1:]
		w.granted = true
		w.grantedAt = time.Now()
		if w.start > q.virtual {
			q.virtual = w.start
		}
		q.running++
		best.running++
		sec := w.grantedAt.Sub(w.enqueued).Seconds()
		if len(best.waits) < waitSampleCap {
			best.waits = append(best.waits, sec)
		} else {
			best.waits[best.waitNext] = sec
			best.waitNext = (best.waitNext + 1) % waitSampleCap
		}
		close(w.ready)
	}
}

func (q *WFQ) releaseFunc(w *waiter) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			now := time.Now()
			q.mu.Lock()
			d := now.Sub(w.grantedAt)
			ts := w.ts
			q.running--
			ts.running--
			ts.served++
			ts.busy += d
			q.busy += d
			if len(ts.done) < doneSampleCap {
				ts.done = append(ts.done, now)
			} else {
				ts.done[ts.doneNext] = now
				ts.doneNext = (ts.doneNext + 1) % doneSampleCap
			}
			q.dispatchLocked()
			q.mu.Unlock()
		})
	}
}

// Drain rejects all queued and future waiters with ErrDraining; running
// work is untouched.
func (q *WFQ) Drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return
	}
	q.draining = true
	for _, name := range q.names {
		ts := q.tenants[name]
		for _, w := range ts.queue {
			w.err = ErrDraining
			close(w.ready)
		}
		ts.queue = nil
	}
}

// rateLocked estimates the tenant's live service rate (completions per
// second) from its completion-timestamp ring over rateWindow. Zero
// until anything completed recently. Callers hold q.mu.
func (ts *tenantState) rateLocked(now time.Time) float64 {
	cutoff := now.Add(-rateWindow)
	n := 0
	oldest := now
	for _, t := range ts.done {
		if t.After(cutoff) {
			n++
			if t.Before(oldest) {
				oldest = t
			}
		}
	}
	if n == 0 {
		return 0
	}
	span := now.Sub(oldest).Seconds()
	if span < 0.001 {
		span = 0.001
	}
	return float64(n) / span
}

// RetryAfterSeconds is the live Retry-After hint for one tenant: its
// current queue depth divided by its observed service rate — how long
// until a retry would actually find room — instead of a static
// config-derived constant. Falls back to FallbackRetryS before any
// completion has been observed.
func (q *WFQ) RetryAfterSeconds(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	ts := q.tenants[tenant]
	if ts == nil {
		return q.cfg.FallbackRetryS
	}
	rate := ts.rateLocked(time.Now())
	if rate <= 0 {
		return q.cfg.FallbackRetryS
	}
	secs := int(math.Ceil(float64(len(ts.queue)+ts.running) / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > retryAfterMax {
		secs = retryAfterMax
	}
	return secs
}

// TenantSnapshot is one tenant's admission gauges in /metrics.
type TenantSnapshot struct {
	Name        string  `json:"name"`
	Weight      float64 `json:"weight"`
	QueueCap    int     `json:"queue_cap"`
	Admitted    int64   `json:"admitted"`
	Served      int64   `json:"served"`
	Rejected    int64   `json:"rejected"`
	Queued      int     `json:"queued"`
	Running     int     `json:"running"`
	RatePerSec  float64 `json:"rate_per_sec"`
	WaitP50MS   float64 `json:"wait_p50_ms"`
	WaitP90MS   float64 `json:"wait_p90_ms"`
	BusyMS      int64   `json:"busy_ms"`
	RetryAfterS int     `json:"retry_after_s"`
}

// Tenants returns per-tenant snapshots in configuration order.
func (q *WFQ) Tenants() []TenantSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	out := make([]TenantSnapshot, 0, len(q.names))
	for _, name := range q.names {
		ts := q.tenants[name]
		rate := ts.rateLocked(now)
		snap := TenantSnapshot{
			Name:       name,
			Weight:     ts.cfg.Weight,
			QueueCap:   ts.queueCap,
			Admitted:   ts.admitted,
			Served:     ts.served,
			Rejected:   ts.rejected,
			Queued:     len(ts.queue),
			Running:    ts.running,
			RatePerSec: rate,
			WaitP50MS:  peer.Quantile(ts.waits, 0.5) * 1000,
			WaitP90MS:  peer.Quantile(ts.waits, 0.9) * 1000,
			BusyMS:     ts.busy.Milliseconds(),
		}
		if rate > 0 {
			snap.RetryAfterS = int(math.Ceil(float64(len(ts.queue)+ts.running) / rate))
			if snap.RetryAfterS < 1 {
				snap.RetryAfterS = 1
			}
			if snap.RetryAfterS > retryAfterMax {
				snap.RetryAfterS = retryAfterMax
			}
		} else {
			snap.RetryAfterS = q.cfg.FallbackRetryS
		}
		out = append(out, snap)
	}
	return out
}

// Pool-compatible gauges for /metrics.

// Workers returns the number of service slots.
func (q *WFQ) Workers() int { return q.cfg.Workers }

// Busy returns the number of slots currently serving.
func (q *WFQ) Busy() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.running
}

// QueueDepth returns the total number of queued requests across tenants.
func (q *WFQ) QueueDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, name := range q.names {
		n += len(q.tenants[name].queue)
	}
	return n
}

// QueueLimit returns the total queue quota across tenants.
func (q *WFQ) QueueLimit() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, name := range q.names {
		n += q.tenants[name].queueCap
	}
	return n
}

// Utilization is busy worker-time over elapsed worker-time since startup.
func (q *WFQ) Utilization() float64 {
	q.mu.Lock()
	busy := q.busy
	q.mu.Unlock()
	elapsed := time.Since(q.started).Seconds() * float64(q.cfg.Workers)
	if elapsed <= 0 {
		return 0
	}
	u := busy.Seconds() / elapsed
	if u > 1 {
		u = 1
	}
	return u
}
