// Package grid turns a set of bbserved replicas into one logical
// multi-tenant service. It has three parts, each usable alone:
//
//   - a consistent-hash ring (ring.go) that partitions the canonical
//     SHA-256 cache-key space across replicas with minimal key movement
//     on membership change;
//   - a cache peer protocol (node.go) layered on internal/peer: the
//     ring owner of a key serves read-through gets, registers a
//     single-flight claim so an isomorphism class is solved once across
//     the whole fleet, and accepts fill-backs from the replica that
//     solved on the owner's behalf;
//   - weighted fair queueing admission (wfq.go) that replaces the
//     single global worker pool with per-tenant queues, budget quotas,
//     per-tenant 429/Retry-After computed from live queue depth and
//     service rate, and per-tenant metrics.
//
// The package is policy-only: it never sees a task graph or a schedule,
// just opaque cached bodies, keys, and tenant names. The serving daemon
// (internal/server) composes it with the solver stack.
package grid

import (
	"fmt"
	"strconv"
	"strings"
)

// Tenant configures one admission class.
type Tenant struct {
	// Name is the tenant label requests carry in the X-Tenant header.
	Name string

	// Weight is the tenant's relative service share under contention
	// (default 1). A weight-2 tenant drains its queue twice as fast as a
	// weight-1 tenant when both are saturated.
	Weight float64

	// QueueCap bounds this tenant's waiting requests — its budget quota
	// of the server's backlog. Arrivals beyond it are rejected with 429.
	// 0 picks the admission default.
	QueueCap int
}

// ParseTenants parses a -tenants flag: a comma-separated list of
// name:weight or name:weight:queuecap entries, e.g. "gold:2,free:1" or
// "gold:2:64,free:1:16". A bare name gets weight 1.
func ParseTenants(spec string) ([]Tenant, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Tenant
	seen := map[string]bool{}
	for _, ent := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(ent), ":")
		t := Tenant{Name: strings.TrimSpace(parts[0]), Weight: 1}
		if t.Name == "" {
			return nil, fmt.Errorf("grid: empty tenant name in %q", spec)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("grid: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if len(parts) > 3 {
			return nil, fmt.Errorf("grid: tenant entry %q: want name[:weight[:queuecap]]", ent)
		}
		if len(parts) >= 2 {
			w, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("grid: tenant %q: bad weight %q", t.Name, parts[1])
			}
			t.Weight = w
		}
		if len(parts) == 3 {
			c, err := strconv.Atoi(strings.TrimSpace(parts[2]))
			if err != nil || c < 0 {
				return nil, fmt.Errorf("grid: tenant %q: bad queue cap %q", t.Name, parts[2])
			}
			t.QueueCap = c
		}
		out = append(out, t)
	}
	return out, nil
}
