package grid

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParseTenants(t *testing.T) {
	ts, err := ParseTenants("gold:2, free , cap:1.5:8")
	if err != nil {
		t.Fatal(err)
	}
	want := []Tenant{{Name: "gold", Weight: 2}, {Name: "free", Weight: 1}, {Name: "cap", Weight: 1.5, QueueCap: 8}}
	if len(ts) != len(want) {
		t.Fatalf("got %d tenants", len(ts))
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("tenant %d = %+v, want %+v", i, ts[i], want[i])
		}
	}
	if got, err := ParseTenants("  "); err != nil || got != nil {
		t.Fatalf("blank spec: %v %v", got, err)
	}
	for _, bad := range []string{"a:0", "a:-1", ":2", "a:2:x", "a,a", "a:1:2:3"} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
}

func TestWFQImmediateAndQueued(t *testing.T) {
	q := NewWFQ(WFQConfig{Workers: 2})
	ctx := context.Background()
	rel1, err := q.Acquire(ctx, DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := q.Acquire(ctx, DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	if q.Busy() != 2 {
		t.Fatalf("busy = %d", q.Busy())
	}

	got := make(chan error, 1)
	go func() {
		rel3, err := q.Acquire(ctx, DefaultTenant)
		if err == nil {
			rel3()
		}
		got <- err
	}()
	waitFor(t, "third acquire to queue", func() bool { return q.QueueDepth() == 1 })
	rel1()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	rel2()
	waitFor(t, "slots to drain", func() bool { return q.Busy() == 0 })
	if u := q.Utilization(); u <= 0 {
		t.Fatalf("utilization = %v after served work", u)
	}
}

func TestWFQUnknownTenantAndResolve(t *testing.T) {
	q := NewWFQ(WFQConfig{Tenants: []Tenant{{Name: "gold", Weight: 2}}})
	if _, ok := q.Resolve(""); !ok {
		t.Fatal("empty tenant must resolve to default")
	}
	if name, ok := q.Resolve("gold"); !ok || name != "gold" {
		t.Fatal("configured tenant must resolve")
	}
	if _, ok := q.Resolve("stranger"); ok {
		t.Fatal("unknown tenant resolved")
	}
	if _, err := q.Acquire(context.Background(), "stranger"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("got %v, want ErrUnknownTenant", err)
	}
}

func TestWFQOverloadQuotaPerTenant(t *testing.T) {
	q := NewWFQ(WFQConfig{
		Workers: 1,
		Tenants: []Tenant{{Name: "small", Weight: 1, QueueCap: 2}, {Name: "big", Weight: 1, QueueCap: 8}},
	})
	ctx := context.Background()
	rel, err := q.Acquire(ctx, "small")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := q.Acquire(ctx, "small"); err == nil {
				r()
			}
		}()
	}
	waitFor(t, "small queue to fill", func() bool { return q.QueueDepth() == 2 })

	// small's quota (2) is exhausted; big's is untouched.
	if _, err := q.Acquire(ctx, "small"); !errors.Is(err, ErrOverload) {
		t.Fatalf("small over quota: got %v, want ErrOverload", err)
	}
	done := make(chan struct{})
	go func() {
		if r, err := q.Acquire(ctx, "big"); err == nil {
			r()
		}
		close(done)
	}()
	waitFor(t, "big to queue", func() bool { return q.QueueDepth() == 3 })

	snaps := q.Tenants()
	var small TenantSnapshot
	for _, s := range snaps {
		if s.Name == "small" {
			small = s
		}
	}
	if small.Rejected != 1 || small.Queued != 2 {
		t.Fatalf("small snapshot %+v: want 1 rejected, 2 queued", small)
	}

	rel()
	<-done
	wg.Wait()
	waitFor(t, "drain to idle", func() bool { return q.Busy() == 0 })
}

// TestWFQFairness2to1 is the WFQ accounting contract: with both queues
// saturated and one service slot, a weight-2 tenant is served twice as
// often as a weight-1 tenant, regardless of arrival interleaving.
func TestWFQFairness2to1(t *testing.T) {
	const perTenant = 60
	q := NewWFQ(WFQConfig{
		Workers: 1,
		Tenants: []Tenant{
			{Name: "gold", Weight: 2, QueueCap: perTenant + 1},
			{Name: "bronze", Weight: 1, QueueCap: perTenant + 1},
		},
	})
	ctx := context.Background()

	// Plug the only slot so both queues fill before service starts.
	plug, err := q.Acquire(ctx, DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu    sync.Mutex
		order []string
		wg    sync.WaitGroup
	)
	for _, tenant := range []string{"gold", "bronze"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				rel, err := q.Acquire(ctx, tenant)
				if err != nil {
					t.Errorf("acquire %s: %v", tenant, err)
					return
				}
				// Record before releasing: the next grant dispatches only at
				// release, so the recorded order is the exact grant order.
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				rel()
			}(tenant)
		}
	}
	waitFor(t, "both queues saturated", func() bool { return q.QueueDepth() == 2*perTenant })
	plug()
	wg.Wait()

	// While both tenants were backlogged (the first 3/2·perTenant grants),
	// service must interleave at the weight ratio.
	window := order[:perTenant*3/2]
	gold := 0
	for _, name := range window {
		if name == "gold" {
			gold++
		}
	}
	bronze := len(window) - gold
	ratio := float64(gold) / float64(bronze)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("saturated service ratio gold:bronze = %d:%d (%.2f), want 2.0 +/- 20%%", gold, bronze, ratio)
	}
}

func TestWFQDrainRejectsQueuedAndFuture(t *testing.T) {
	q := NewWFQ(WFQConfig{Workers: 1})
	ctx := context.Background()
	rel, err := q.Acquire(ctx, DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx, DefaultTenant)
		got <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return q.QueueDepth() == 1 })
	q.Drain()
	if err := <-got; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter got %v, want ErrDraining", err)
	}
	if _, err := q.Acquire(ctx, DefaultTenant); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain acquire got %v, want ErrDraining", err)
	}
	rel() // running work is untouched by drain
}

func TestWFQAcquireCancelWhileQueued(t *testing.T) {
	q := NewWFQ(WFQConfig{Workers: 1})
	rel, err := q.Acquire(context.Background(), DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx, DefaultTenant)
		got <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return q.QueueDepth() == 1 })
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}
	if q.QueueDepth() != 0 {
		t.Fatal("canceled waiter left in queue")
	}
	rel()
}

// TestWFQRetryAfterLive: before any completion the hint is the static
// fallback; once the tenant has a live service rate the hint tracks
// backlog / rate.
func TestWFQRetryAfterLive(t *testing.T) {
	q := NewWFQ(WFQConfig{Workers: 1, FallbackRetryS: 7})
	if got := q.RetryAfterSeconds(DefaultTenant); got != 7 {
		t.Fatalf("cold hint = %d, want fallback 7", got)
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		rel, err := q.Acquire(ctx, DefaultTenant)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	// 10 near-instant completions: the live rate is high, so even with a
	// small backlog the hint collapses to the 1s floor — far below the
	// static fallback.
	rel, err := q.Acquire(ctx, DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	got := q.RetryAfterSeconds(DefaultTenant)
	rel()
	if got < 1 || got > 2 {
		t.Fatalf("live hint = %d, want 1-2s from measured rate", got)
	}
	if q.RetryAfterSeconds("nope") != 7 {
		t.Fatal("unknown tenant must fall back")
	}
}
