// Package portfolio is the anytime pipeline that ties the repository's
// solvers together the way a practitioner would use them:
//
//  1. analyze   — certified lower bound on the optimal Lmax
//     (internal/analysis: demand + path arguments);
//  2. greedy    — portfolio of list schedulers (EDF, HLFET, least-slack)
//     for an instant incumbent;
//  3. improve   — local search on the best greedy schedule;
//  4. exact     — branch-and-bound warm-started with that incumbent
//     (UpperBoundSeeded) and armed with the certified bound
//     (UseGlobalBound), under the caller's time budget.
//
// The pipeline never returns a worse schedule than its cheapest stage, is
// interruptible (a zero/short budget stops after stage 3), and reports
// which stage produced the final schedule together with the optimality
// status: proven by exhaustion, proven by bound-match, or "gap" with both
// bound and incumbent cost.
package portfolio

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/improve"
	"repro/internal/listsched"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Options configures the pipeline.
type Options struct {
	// Budget is the wall-clock allowance for the exact stage; 0 skips it
	// entirely (stages 1–3 are effectively instantaneous).
	Budget time.Duration

	// ImproveIters bounds the local-search stage (default 2000).
	ImproveIters int

	// Workers > 1 runs the exact stage on the parallel solver.
	Workers int

	// Seed drives the local-search move order.
	Seed int64
}

// Stage identifies the pipeline stage that produced the final schedule.
type Stage string

const (
	StageGreedy  Stage = "greedy"
	StageImprove Stage = "improve"
	StageExact   Stage = "exact"
)

// Result is the pipeline outcome.
type Result struct {
	Schedule *sched.Schedule
	Cost     taskgraph.Time

	// Lower is the certified lower bound; Gap = Cost − Lower (0 when the
	// result is proven optimal by bound-match; may be positive even for
	// exhaustion-proven optima, since the bound itself can be loose).
	Lower taskgraph.Time
	Gap   taskgraph.Time

	// Optimal reports a proven optimum (exhaustion or bound-match).
	Optimal bool

	// Stage names the producer of the final schedule; Greedy names the
	// winning list policy.
	Stage  Stage
	Greedy listsched.Policy

	// Analysis is the stage-1 report (nil only on error paths).
	Analysis *analysis.Report

	// Search carries the exact stage's statistics (zero when skipped).
	Search core.Stats
}

// Solve runs the pipeline.
func Solve(g *taskgraph.Graph, p platform.Platform, opts Options) (Result, error) {
	return SolveContext(context.Background(), g, p, opts)
}

// SolveContext runs the pipeline with the exact stage bound by ctx in
// addition to the wall-clock budget — cancellation stops the search early
// and the pipeline still returns its best incumbent so far.
func SolveContext(ctx context.Context, g *taskgraph.Graph, p platform.Platform, opts Options) (Result, error) {
	rep, err := analysis.Analyze(g, p)
	if err != nil {
		return Result{}, err
	}
	res := Result{Lower: rep.Lower, Analysis: rep}

	best, err := listsched.Best(g, p)
	if err != nil {
		return Result{}, err
	}
	res.Schedule, res.Cost = best.Schedule, best.Lmax
	res.Stage, res.Greedy = StageGreedy, best.Policy

	imp, err := improve.Improve(best.Schedule, improve.Options{
		MaxIters: opts.ImproveIters, Kicks: 3, Seed: opts.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	if imp.Cost < res.Cost {
		res.Schedule, res.Cost, res.Stage = imp.Schedule, imp.Cost, StageImprove
	}

	if opts.Budget > 0 {
		params := core.Params{
			UpperBound:       core.UpperBoundSeeded,
			SeedSchedule:     res.Schedule,
			GlobalLowerBound: rep.Lower,
			UseGlobalBound:   opts.Workers <= 1,
			Resources:        core.ResourceBounds{TimeLimit: opts.Budget},
		}
		var exact core.Result
		if opts.Workers > 1 {
			exact, err = core.SolveParallelContext(ctx, g, p, core.ParallelParams{Params: params, Workers: opts.Workers})
		} else {
			exact, err = core.SolveContext(ctx, g, p, params)
		}
		if err != nil {
			return Result{}, err
		}
		res.Search = exact.Stats
		if exact.Schedule != nil && exact.Cost < res.Cost {
			res.Schedule, res.Cost, res.Stage = exact.Schedule, exact.Cost, StageExact
		}
		res.Optimal = exact.Optimal && exact.Cost == res.Cost
	}
	if res.Cost <= res.Lower {
		res.Optimal = true // bound-match certificate, whatever the stage
	}
	res.Gap = res.Cost - res.Lower
	if res.Gap < 0 {
		return Result{}, fmt.Errorf("portfolio: cost %d below certified bound %d — bound or solver is broken", res.Cost, res.Lower)
	}
	return res, nil
}

// String summarizes the outcome.
func (r Result) String() string {
	status := fmt.Sprintf("gap <= %d", r.Gap)
	if r.Optimal {
		status = "proven optimal"
	}
	return fmt.Sprintf("portfolio: Lmax=%d (lower bound %d, %s) via %s", r.Cost, r.Lower, status, r.Stage)
}
