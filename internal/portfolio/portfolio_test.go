package portfolio

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bruteforce"
	"repro/internal/deadline"
	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/taskgraph"
)

func smallWorkload(t testing.TB, seed int64) *taskgraph.Graph {
	t.Helper()
	p := gen.Defaults()
	p.NMin, p.NMax = 5, 7
	p.DepthMin, p.DepthMax = 3, 4
	g := gen.New(p, seed).Graph()
	if err := deadline.Assign(g, 1.5, deadline.EqualSlack); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPipelineFindsOptimum(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		g := smallWorkload(t, seed)
		for _, m := range []int{1, 2, 3} {
			plat := platform.New(m)
			want, err := bruteforce.Solve(g, plat)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Solve(g, plat, Options{Budget: 5 * time.Second, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d m=%d: %v", seed, m, err)
			}
			if res.Cost != want.Cost {
				t.Errorf("seed %d m=%d: cost %d, optimum %d", seed, m, res.Cost, want.Cost)
			}
			if !res.Optimal {
				t.Errorf("seed %d m=%d: optimum found but not proven", seed, m)
			}
			if res.Lower > res.Cost {
				t.Errorf("seed %d m=%d: bound above optimum", seed, m)
			}
			if err := res.Schedule.Check(); err != nil {
				t.Errorf("seed %d m=%d: invalid schedule: %v", seed, m, err)
			}
		}
	}
}

func TestPipelineWithoutBudget(t *testing.T) {
	// Budget 0: stages 1–3 only. Still a valid, never-regressing result.
	g := smallWorkload(t, 77)
	plat := platform.New(2)
	res, err := Solve(g, plat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil || res.Schedule.Check() != nil {
		t.Fatal("no valid schedule from greedy+improve stages")
	}
	if res.Stage == StageExact {
		t.Fatal("exact stage ran despite zero budget")
	}
	if res.Search.Generated != 0 {
		t.Fatal("search stats nonzero with zero budget")
	}
	if res.Gap < 0 {
		t.Fatal("negative gap")
	}
}

func TestPipelineParallelStage(t *testing.T) {
	g := smallWorkload(t, 42)
	plat := platform.New(2)
	seq, err := Solve(g, plat, Options{Budget: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(g, plat, Options{Budget: 5 * time.Second, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Cost != seq.Cost {
		t.Fatalf("parallel stage cost %d != sequential %d", par.Cost, seq.Cost)
	}
}

func TestPipelineStageAttribution(t *testing.T) {
	// A trivially easy instance: greedy is optimal, so the final stage
	// must be greedy (or improve with 0 improvements), never exact.
	g := taskgraph.Chain(4, 5, 0)
	if err := deadline.Assign(g, 2.0, deadline.EqualSlack); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, platform.New(1), Options{Budget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage == StageExact {
		t.Fatalf("exact stage claimed credit on a greedy-optimal chain (stage %s)", res.Stage)
	}
	if !res.Optimal {
		t.Fatal("chain optimum not proven")
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := Solve(taskgraph.New(0), platform.New(1), Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := Solve(taskgraph.Diamond(), platform.Platform{M: 0}, Options{}); err == nil {
		t.Fatal("bad platform accepted")
	}
}

func TestResultString(t *testing.T) {
	g := smallWorkload(t, 5)
	res, err := Solve(g, platform.New(2), Options{Budget: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "Lmax=") || !strings.Contains(s, "lower bound") {
		t.Fatalf("String: %q", s)
	}
}

// TestBoundMatchTerminatesEarly: on a workload whose optimum equals the
// certified bound, the exact stage must stop early via UseGlobalBound
// (observable through Optimal=true with a small vertex count even for an
// otherwise large search).
func TestBoundMatchTerminatesEarly(t *testing.T) {
	// Serialized equal tasks: bound is tight (see analysis tests).
	g := taskgraph.New(6)
	for i := 0; i < 6; i++ {
		g.AddTask(taskgraph.Task{Exec: 5, Deadline: 5})
	}
	res, err := Solve(g, platform.New(1), Options{Budget: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Gap != 0 {
		t.Fatalf("tight-bound instance not proven by bound-match: %+v", res)
	}
	// 6 independent equal tasks on 1 proc would be 6! = 720 goal paths;
	// the bound-match must have cut the search far below full exhaustion,
	// or skipped it entirely because greedy already matched the bound.
	if res.Search.Generated > 100 {
		t.Fatalf("bound-match did not terminate the search early: %d vertices", res.Search.Generated)
	}
}

// TestPipelineHeterogeneousPlatform runs the whole pipeline on a
// fast/slow platform with restricted affinities: every stage (analysis
// bound, list portfolio, local search, exact search) must thread the
// speed factors and masks, the result must match the brute-force hetero
// optimum, and the final schedule must respect both tables.
func TestPipelineHeterogeneousPlatform(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := smallWorkload(t, seed)
		plat := platform.New(3)
		plat.Speed = []float64{1, 2, 0.5}
		plat.Affinity = make([]uint64, g.NumTasks())
		for id := range plat.Affinity {
			plat.Affinity[id] = 0b111
			if id%3 == 1 {
				plat.Affinity[id] = 0b011 // pinned off the slow processor
			}
		}
		want, err := bruteforce.Solve(g, plat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(g, plat, Options{Budget: 5 * time.Second, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Cost != want.Cost {
			t.Fatalf("seed %d: pipeline Lmax %d, brute force %d", seed, res.Cost, want.Cost)
		}
		if !res.Optimal {
			t.Fatalf("seed %d: exhausted exact stage not marked optimal: %s", seed, res)
		}
		if res.Lower > res.Cost {
			t.Fatalf("seed %d: certified bound %d above optimum %d", seed, res.Lower, res.Cost)
		}
		for _, task := range g.Tasks() {
			q := res.Schedule.Proc(task.ID)
			if !plat.Allows(task.ID, q) {
				t.Fatalf("seed %d: task %d placed on forbidden processor %d", seed, task.ID, q)
			}
			if got, want := res.Schedule.Finish(task.ID)-res.Schedule.Start(task.ID), plat.ExecCost(task.Exec, q); got != want {
				t.Fatalf("seed %d: task %d runs %d ticks on proc %d, want %d", seed, task.ID, got, q, want)
			}
		}
	}
}
