package stats

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestSampleJSONRoundTrip(t *testing.T) {
	var s Sample
	for _, x := range []float64{3, -1.5, 0, 1e17, 0.1} {
		s.Add(x)
	}
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back Sample
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Values(), back.Values()) {
		t.Fatalf("round trip lost observations: %v != %v", back.Values(), s.Values())
	}
}

func TestSampleJSONEmpty(t *testing.T) {
	var s Sample
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Fatalf("empty sample encodes as %s", data)
	}
	var back Sample
	if err := json.Unmarshal([]byte("[]"), &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 0 {
		t.Fatalf("empty decode has %d observations", back.N())
	}
}
