package stats

import "encoding/json"

// MarshalJSON encodes the sample as a plain JSON array of its observations,
// in insertion order. Go's encoder emits the shortest representation that
// round-trips each float64 exactly, so marshal → unmarshal is lossless —
// the property the experiment journal (internal/exp) relies on to make
// resumed runs byte-identical to uninterrupted ones.
func (s *Sample) MarshalJSON() ([]byte, error) {
	if s.xs == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(s.xs)
}

// UnmarshalJSON decodes a JSON array of observations, replacing the
// sample's contents.
func (s *Sample) UnmarshalJSON(data []byte) error {
	var xs []float64
	if err := json.Unmarshal(data, &xs); err != nil {
		return err
	}
	s.xs = xs
	return nil
}
