package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestSampleSummaries(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	approx(t, "Mean", s.Mean(), 5, 1e-12)
	approx(t, "Variance", s.Variance(), 32.0/7.0, 1e-12)
	approx(t, "StdDev", s.StdDev(), math.Sqrt(32.0/7.0), 1e-12)
	approx(t, "Min", s.Min(), 2, 0)
	approx(t, "Max", s.Max(), 9, 0)
	approx(t, "Median", s.Median(), 4.5, 1e-12)
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Fatal("empty sample summaries not zero")
	}
	if !math.IsInf(s.CI(0.9), 1) {
		t.Fatal("CI of empty sample not +Inf")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty Min/Max sentinels wrong")
	}
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.AddInt(42)
	approx(t, "Mean", s.Mean(), 42, 0)
	if s.Variance() != 0 {
		t.Fatal("variance of single observation not 0")
	}
	if !math.IsInf(s.CI(0.95), 1) {
		t.Fatal("CI with n=1 must be +Inf")
	}
	if s.WithinRelativeError(0.95, 0.1, 1e-9) {
		t.Fatal("n=1 cannot satisfy a confidence stop rule")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	var s Sample
	for _, x := range []float64{10, 20, 30, 40} {
		s.Add(x)
	}
	approx(t, "q0", s.Quantile(0), 10, 0)
	approx(t, "q1", s.Quantile(1), 40, 0)
	approx(t, "q1/3", s.Quantile(1.0/3.0), 20, 1e-9)
	approx(t, "q0.5", s.Quantile(0.5), 25, 1e-9)
}

func TestGeoMean(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(100)
	approx(t, "GeoMean", s.GeoMean(), 10, 1e-9)
	s.Add(-1)
	if !math.IsNaN(s.GeoMean()) {
		t.Fatal("GeoMean of non-positive data must be NaN")
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.8413: 0.9998, // ≈1
		0.975:  1.959964,
		0.95:   1.644854,
		0.995:  2.575829,
		0.05:   -1.644854,
	}
	for p, want := range cases {
		approx(t, "NormalQuantile", NormalQuantile(p), want, 5e-4)
	}
	if !math.IsNaN(NormalQuantile(0)) || !math.IsNaN(NormalQuantile(1)) {
		t.Fatal("quantile at 0/1 must be NaN")
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	f := func(u float64) bool {
		p := 0.001 + 0.998*math.Abs(math.Mod(u, 1))
		return math.Abs(NormalQuantile(p)+NormalQuantile(1-p)) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTKnownValues(t *testing.T) {
	// Reference values from standard t-tables.
	cases := []struct {
		p, nu, want float64
	}{
		{0.95, 5, 2.015},
		{0.975, 5, 2.571},
		{0.95, 10, 1.812},
		{0.975, 10, 2.228},
		{0.95, 30, 1.697},
		{0.975, 30, 2.042},
		{0.95, 100, 1.660},
	}
	for _, c := range cases {
		approx(t, "StudentT", StudentTQuantile(c.p, c.nu), c.want, 6e-3)
	}
}

func TestStudentTApproachesNormal(t *testing.T) {
	for _, p := range []float64{0.9, 0.95, 0.975, 0.995} {
		tq := StudentTQuantile(p, 1e6)
		approx(t, "t(ν→∞)", tq, NormalQuantile(p), 1e-4)
	}
}

func TestCICoverageMonteCarlo(t *testing.T) {
	// Draw many size-20 normal samples; the 90% t-interval must cover the
	// true mean ≈90% of the time. 3000 trials → stderr ≈ 0.55%, use ±2.5%.
	rng := rand.New(rand.NewSource(1))
	const trials = 3000
	covered := 0
	for i := 0; i < trials; i++ {
		var s Sample
		for j := 0; j < 20; j++ {
			s.Add(5 + 2*rng.NormFloat64())
		}
		mean, half := s.MeanCI(0.90)
		if math.Abs(mean-5) <= half {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.875 || rate > 0.925 {
		t.Fatalf("90%% CI covered %.1f%% of the time", rate*100)
	}
}

func TestWithinRelativeError(t *testing.T) {
	var s Sample
	// Tight sample around 100: should converge quickly at 10%.
	for i := 0; i < 10; i++ {
		s.Add(100 + float64(i%3))
	}
	if !s.WithinRelativeError(0.90, 0.10, 1e-9) {
		t.Fatal("tight sample not within 10% at 90%")
	}
	if s.WithinRelativeError(0.999, 0.0001, 1e-9) {
		t.Fatal("tight sample satisfies an absurd 0.01% requirement")
	}

	// Near-zero mean: judged on absolute eps.
	var z Sample
	for i := 0; i < 50; i++ {
		z.Add(float64(i%2)*2 - 1) // ±1 around 0
	}
	if z.WithinRelativeError(0.90, 0.10, 1e-9) {
		t.Fatal("±1 noise around 0 accepted with eps=1e-9")
	}
	if !z.WithinRelativeError(0.90, 0.10, 1.0) {
		t.Fatal("±1 noise around 0 rejected with eps=1 (half-width ≈0.24)")
	}
}

func TestVarianceMatchesDefinitionProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		var s Sample
		for _, x := range raw {
			// Clamp to a sane range to avoid float overflow artifacts.
			s.Add(math.Mod(x, 1e6))
		}
		m := s.Mean()
		var ss float64
		for _, x := range s.Values() {
			ss += (x - m) * (x - m)
		}
		want := ss / float64(s.N()-1)
		diff := math.Abs(s.Variance() - want)
		scale := math.Max(1, math.Abs(want))
		return diff/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleString(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(5)
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}

func TestLogHistogram(t *testing.T) {
	var s Sample
	for _, x := range []float64{-2, 0, 3, 5, 50, 500, 700, 5000} {
		s.Add(x)
	}
	h := s.LogHistogram()
	if h.Negatives != 1 || h.Zeros != 1 {
		t.Fatalf("out-of-domain counts: %+v", h)
	}
	if h.Lo != 0 || len(h.Counts) != 4 {
		t.Fatalf("bins: %+v", h)
	}
	want := []int{2, 1, 2, 1} // [1,10): 3,5; [10,100): 50; [100,1000): 500,700; [1000,1e4): 5000
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d (%+v)", i, h.Counts[i], c, h)
		}
	}
	bars := h.Bars()
	for _, wantLine := range []string{"1e0-1e1 | ## 2", "1e3-1e4 | # 1", "<0", "=0"} {
		if !strings.Contains(bars, wantLine) {
			t.Fatalf("bars missing %q:\n%s", wantLine, bars)
		}
	}
	var empty Sample
	if h := empty.LogHistogram(); len(h.Counts) != 0 || h.Bars() != "" {
		t.Fatal("empty histogram not empty")
	}
}
