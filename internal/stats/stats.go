// Package stats provides the statistical machinery behind the paper's §5
// evaluation protocol: sample summaries, Student-t confidence intervals, and
// the adaptive stop rule "run until a C% confidence level is achieved for a
// maximum error within E% of the reported average" (the paper uses 90%/10%
// for generated-vertex counts and 95%/0.5% for maximum task lateness).
//
// Everything is stdlib-only; the t-distribution quantiles are computed from
// the incomplete-beta-free Cornish–Fisher-style expansion around the normal
// quantile, which is accurate to ~1e-4 over the degrees of freedom and
// confidence levels used here (ν >= 2, 80–99.9%).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations and answers summary queries. The zero
// value is an empty sample ready for use.
type Sample struct {
	xs []float64
}

// Add appends one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddInt appends one integer observation.
func (s *Sample) AddInt(x int64) { s.Add(float64(x)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the raw observations (not a copy; callers must not modify).
func (s *Sample) Values() []float64 { return s.xs }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(len(s.xs)))
}

// Min returns the smallest observation (+Inf for an empty sample).
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, x := range s.xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest observation (−Inf for an empty sample).
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, x := range s.xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation on
// the sorted sample. It returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// GeoMean returns the geometric mean; it requires strictly positive
// observations and returns NaN otherwise. Search-effort ratios are
// conventionally aggregated geometrically.
func (s *Sample) GeoMean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(s.xs)))
}

// CI returns the half-width of the two-sided confidence interval for the
// mean at the given confidence level (e.g. 0.90), using the Student-t
// quantile with n−1 degrees of freedom. It returns +Inf for n < 2 (no
// interval can be formed).
func (s *Sample) CI(confidence float64) float64 {
	n := len(s.xs)
	if n < 2 {
		return math.Inf(1)
	}
	t := StudentTQuantile(1-(1-confidence)/2, float64(n-1))
	return t * s.StdErr()
}

// MeanCI returns the mean together with the CI half-width.
func (s *Sample) MeanCI(confidence float64) (mean, half float64) {
	return s.Mean(), s.CI(confidence)
}

// WithinRelativeError reports whether the CI half-width at the given
// confidence is within frac of |mean| — the paper's stop rule. Samples with
// |mean| below eps are judged on ABSOLUTE half-width <= eps instead, so a
// metric that legitimately averages ≈0 (lateness can) still converges.
func (s *Sample) WithinRelativeError(confidence, frac, eps float64) bool {
	if s.N() < 2 {
		return false
	}
	half := s.CI(confidence)
	m := math.Abs(s.Mean())
	if m < eps {
		return half <= eps
	}
	return half <= frac*m
}

func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g [%.4g, %.4g]",
		s.N(), s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// NormalQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation (|ε| < 1.15e-9).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0.5 {
			return 0
		}
		return math.NaN()
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}

	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// StudentTQuantile returns the p-quantile of the Student-t distribution
// with nu degrees of freedom, via the Cornish–Fisher expansion of the
// normal quantile (Peiser's formula with higher-order terms). Accuracy is
// better than 1e-3 for nu >= 2 over p in [0.8, 0.9995], the range used by
// experiment stop rules.
func StudentTQuantile(p, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	z := NormalQuantile(p)
	z2 := z * z
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	g4 := ((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) * z / 92160
	return z + g1/nu + g2/(nu*nu) + g3/(nu*nu*nu) + g4/(nu*nu*nu*nu)
}

// Histogram bins a sample on a log10 scale — the natural view of the
// branch-and-bound vertex counts, whose distribution spans six orders of
// magnitude across the workload regimes (see EXPERIMENTS.md).
type Histogram struct {
	// Lo is the power of ten of the first bin; bin i covers
	// [10^(Lo+i), 10^(Lo+i+1)).
	Lo     int
	Counts []int

	// Zeros and Negatives count observations outside the log domain.
	Zeros, Negatives int
}

// LogHistogram builds the histogram. Empty samples yield an empty
// histogram.
func (s *Sample) LogHistogram() Histogram {
	var h Histogram
	if len(s.xs) == 0 {
		return h
	}
	lo, hi := math.MaxInt32, math.MinInt32
	decades := make(map[int]int)
	for _, x := range s.xs {
		switch {
		case x < 0:
			h.Negatives++
		case x == 0:
			h.Zeros++
		default:
			d := int(math.Floor(math.Log10(x)))
			decades[d]++
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
	}
	if len(decades) == 0 {
		return h
	}
	h.Lo = lo
	h.Counts = make([]int, hi-lo+1)
	for d, c := range decades {
		h.Counts[d-lo] = c
	}
	return h
}

// Bars renders the histogram as one text line per decade with hash bars,
// e.g. "1e3-1e4 | ####### 7".
func (h Histogram) Bars() string {
	var b strings.Builder
	if h.Negatives > 0 {
		fmt.Fprintf(&b, "  <0      | %s %d\n", strings.Repeat("#", h.Negatives), h.Negatives)
	}
	if h.Zeros > 0 {
		fmt.Fprintf(&b, "  =0      | %s %d\n", strings.Repeat("#", h.Zeros), h.Zeros)
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "  1e%d-1e%d | %s %d\n", h.Lo+i, h.Lo+i+1, strings.Repeat("#", c), c)
	}
	return b.String()
}
