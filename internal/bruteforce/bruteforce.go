// Package bruteforce implements the exhaustive implicit enumerative search
// that the paper's §1 contrasts branch-and-bound against: a depth-first
// enumeration of ALL permutations of task-to-processor assignments and
// schedule orderings under the §4.3 operation, with no bounding at all.
//
// Its complexity is the paper's n!·m^n worst case, so it is only usable for
// very small systems — which is exactly its role here: the ground-truth
// oracle that the branch-and-bound solver, the approximation rules and the
// parallel solver are validated against, and the "no pruning" baseline in
// ablation benchmarks.
package bruteforce

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Result is the outcome of an exhaustive search.
type Result struct {
	// Schedule is one optimal complete schedule (the first encountered in
	// the deterministic enumeration order).
	Schedule *sched.Schedule

	// Cost is the optimal maximum task lateness.
	Cost taskgraph.Time

	// Visited counts every partial or complete schedule enumerated,
	// including the empty one: the size of the full search tree.
	Visited int64

	// Goals counts the complete schedules enumerated.
	Goals int64
}

// Limit bounds the number of enumerated vertices; Solve fails when the tree
// is larger. It exists to turn an accidental n=16 call into an error
// instead of heat death.
const Limit = 200_000_000

// Solve exhaustively enumerates the solution space and returns the optimum.
func Solve(g *taskgraph.Graph, p platform.Platform) (Result, error) {
	if err := p.ValidateFor(g.NumTasks()); err != nil {
		return Result{}, err
	}
	if _, err := g.TopoOrder(); err != nil {
		return Result{}, err
	}
	st := sched.NewState(g, p)
	res := Result{Cost: taskgraph.Infinity}
	n := g.NumTasks()
	if n == 0 {
		return Result{}, fmt.Errorf("bruteforce: empty graph")
	}

	var overflow bool
	var rec func()
	rec = func() {
		if overflow {
			return
		}
		res.Visited++
		if res.Visited > Limit {
			overflow = true
			return
		}
		if st.NumPlaced() == n {
			res.Goals++
			if st.Lmax() < res.Cost {
				res.Cost = st.Lmax()
				res.Schedule = st.Snapshot()
			}
			return
		}
		ready := st.ReadyTasks(nil)
		for _, id := range ready {
			for q := 0; q < p.M; q++ {
				if !p.Allows(id, platform.Proc(q)) {
					continue
				}
				st.Place(id, platform.Proc(q))
				rec()
				st.Undo()
			}
		}
	}
	rec()
	if overflow {
		return Result{}, fmt.Errorf("bruteforce: search tree exceeds %d vertices", Limit)
	}
	return res, nil
}
