// Package faults models deterministic, seeded runtime faults for the
// simulated multiprocessor platform. The paper's execution model (§2)
// assumes processors never fail and tasks never exceed their WCET; the
// surrounding fault-tolerant real-time literature (and Shin's own work)
// treats both assumptions as things to be *survived*, not relied on. This
// package supplies the two classic fault classes as plain data:
//
//	ProcFailure — a fail-stop permanent processor failure at time t: the
//	    processor executes nothing at or after t, work in flight at t is
//	    lost (non-preemptive tasks cannot be checkpointed), and work that
//	    finished strictly before t — including data already shipped on
//	    the bus — survives.
//	ExecOverrun — a transient execution-time overrun: one invocation of a
//	    task consumes Extra ticks beyond its nominal execution time. The
//	    fault is transient; a re-executed invocation uses the WCET again.
//
// A Scenario is a set of faults injected into one run. Scenarios are
// injected into the executors (internal/sim for the bus-level view,
// internal/dispatch for the dispatcher view) and consumed by the recovery
// engine (internal/rescue). Model draws reproducible scenarios from a
// seed, so every fault experiment is replayable from (workload seed,
// fault seed).
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/platform"
	"repro/internal/taskgraph"
)

// Kind classifies a fault.
type Kind int

const (
	// ProcFailure is a fail-stop permanent processor failure.
	ProcFailure Kind = iota
	// ExecOverrun is a transient execution-time overrun of one task.
	ExecOverrun
)

func (k Kind) String() string {
	switch k {
	case ProcFailure:
		return "proc-failure"
	case ExecOverrun:
		return "exec-overrun"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one injected fault.
type Fault struct {
	Kind Kind

	// Proc is the processor that fail-stops (ProcFailure only).
	Proc platform.Proc
	// At is the fail-stop instant (ProcFailure only). Work finishing at or
	// before At survives; anything still running at At is lost.
	At taskgraph.Time

	// Task is the overrunning task (ExecOverrun only).
	Task taskgraph.TaskID
	// Extra is the overrun beyond the nominal execution time, > 0
	// (ExecOverrun only).
	Extra taskgraph.Time
}

func (f Fault) String() string {
	switch f.Kind {
	case ProcFailure:
		return fmt.Sprintf("p%d fails at t=%d", f.Proc, f.At)
	case ExecOverrun:
		return fmt.Sprintf("task %d overruns by %d", f.Task, f.Extra)
	}
	return fmt.Sprintf("fault{%d}", int(f.Kind))
}

// Scenario is the set of faults injected into one run. A nil *Scenario is
// the fault-free run; all query methods treat it as such.
type Scenario struct {
	Faults []Fault
}

// Validate checks every fault against a graph with n tasks and a platform
// with m processors: processor and task references in range, positive
// overruns, non-negative failure instants, and at most one failure per
// processor.
func (sc *Scenario) Validate(n, m int) error {
	if sc == nil {
		return nil
	}
	seen := make(map[platform.Proc]bool, m)
	for i, f := range sc.Faults {
		switch f.Kind {
		case ProcFailure:
			if f.Proc < 0 || int(f.Proc) >= m {
				return fmt.Errorf("faults: fault %d: processor %d outside [0,%d)", i, f.Proc, m)
			}
			if f.At < 0 {
				return fmt.Errorf("faults: fault %d: negative failure instant %d", i, f.At)
			}
			if seen[f.Proc] {
				return fmt.Errorf("faults: fault %d: processor %d fails twice", i, f.Proc)
			}
			seen[f.Proc] = true
		case ExecOverrun:
			if f.Task < 0 || int(f.Task) >= n {
				return fmt.Errorf("faults: fault %d: task %d outside [0,%d)", i, f.Task, n)
			}
			if f.Extra <= 0 {
				return fmt.Errorf("faults: fault %d: non-positive overrun %d", i, f.Extra)
			}
		default:
			return fmt.Errorf("faults: fault %d: unknown kind %d", i, f.Kind)
		}
	}
	return nil
}

// DeadAt returns the fail-stop instant of processor q and whether q fails
// at all in this scenario.
func (sc *Scenario) DeadAt(q platform.Proc) (taskgraph.Time, bool) {
	if sc == nil {
		return 0, false
	}
	for _, f := range sc.Faults {
		if f.Kind == ProcFailure && f.Proc == q {
			return f.At, true
		}
	}
	return 0, false
}

// DeadProcs returns the sorted processors that fail in this scenario.
func (sc *Scenario) DeadProcs() []platform.Proc {
	if sc == nil {
		return nil
	}
	var out []platform.Proc
	for _, f := range sc.Faults {
		if f.Kind == ProcFailure {
			out = append(out, f.Proc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LastFailure returns the latest fail-stop instant in the scenario, or
// (0, false) when no processor fails. Recovery begins at this instant:
// the residual problem cannot be dispatched before the fault is detected.
func (sc *Scenario) LastFailure() (taskgraph.Time, bool) {
	if sc == nil {
		return 0, false
	}
	var at taskgraph.Time
	found := false
	for _, f := range sc.Faults {
		if f.Kind == ProcFailure && (!found || f.At > at) {
			at, found = f.At, true
		}
	}
	return at, found
}

// Overrun returns the total extra execution time injected into the task.
func (sc *Scenario) Overrun(id taskgraph.TaskID) taskgraph.Time {
	if sc == nil {
		return 0
	}
	var extra taskgraph.Time
	for _, f := range sc.Faults {
		if f.Kind == ExecOverrun && f.Task == id {
			extra += f.Extra
		}
	}
	return extra
}

func (sc *Scenario) String() string {
	if sc == nil || len(sc.Faults) == 0 {
		return "fault-free"
	}
	parts := make([]string, len(sc.Faults))
	for i, f := range sc.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ", ")
}

// Model draws reproducible fault scenarios from a seed. Two models built
// with the same seed produce identical draws in identical call order.
type Model struct {
	rng *rand.Rand
}

// NewModel returns a seeded fault model.
func NewModel(seed int64) *Model {
	return &Model{rng: rand.New(rand.NewSource(seed))}
}

// ProcFailure draws a uniform processor from the platform and a uniform
// fail-stop instant in [0, horizon). A horizon <= 0 yields failure at 0
// (the processor is dead on arrival).
func (m *Model) ProcFailure(plat platform.Platform, horizon taskgraph.Time) Fault {
	f := Fault{Kind: ProcFailure, Proc: platform.Proc(m.rng.Intn(plat.M))}
	if horizon > 0 {
		f.At = taskgraph.Time(m.rng.Int63n(int64(horizon)))
	}
	return f
}

// Overruns draws an ExecOverrun for each task independently with
// probability prob; the overrun size is uniform in [1, maxFrac·c_i]
// (at least 1 tick). Tasks are visited in ID order, so the draw sequence
// is deterministic.
func (m *Model) Overruns(g *taskgraph.Graph, prob, maxFrac float64) []Fault {
	var out []Fault
	for _, t := range g.Tasks() {
		if m.rng.Float64() >= prob {
			continue
		}
		max := taskgraph.Time(float64(t.Exec) * maxFrac)
		if max < 1 {
			max = 1
		}
		out = append(out, Fault{
			Kind:  ExecOverrun,
			Task:  t.ID,
			Extra: 1 + taskgraph.Time(m.rng.Int63n(int64(max))),
		})
	}
	return out
}
