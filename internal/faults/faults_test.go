package faults

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/taskgraph"
)

func TestScenarioQueries(t *testing.T) {
	sc := &Scenario{Faults: []Fault{
		{Kind: ProcFailure, Proc: 2, At: 40},
		{Kind: ProcFailure, Proc: 0, At: 15},
		{Kind: ExecOverrun, Task: 3, Extra: 5},
		{Kind: ExecOverrun, Task: 3, Extra: 2},
		{Kind: ExecOverrun, Task: 7, Extra: 1},
	}}
	if err := sc.Validate(10, 4); err != nil {
		t.Fatal(err)
	}
	if at, ok := sc.DeadAt(2); !ok || at != 40 {
		t.Fatalf("DeadAt(2) = %d,%v", at, ok)
	}
	if _, ok := sc.DeadAt(1); ok {
		t.Fatal("processor 1 should be alive")
	}
	if got := sc.DeadProcs(); !reflect.DeepEqual(got, []platform.Proc{0, 2}) {
		t.Fatalf("DeadProcs = %v", got)
	}
	if at, ok := sc.LastFailure(); !ok || at != 40 {
		t.Fatalf("LastFailure = %d,%v", at, ok)
	}
	if got := sc.Overrun(3); got != 7 {
		t.Fatalf("Overrun(3) = %d, want 7 (overruns accumulate)", got)
	}
	if got := sc.Overrun(0); got != 0 {
		t.Fatalf("Overrun(0) = %d", got)
	}
}

func TestNilScenarioIsFaultFree(t *testing.T) {
	var sc *Scenario
	if err := sc.Validate(5, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.DeadAt(0); ok {
		t.Fatal("nil scenario has dead processors")
	}
	if _, ok := sc.LastFailure(); ok {
		t.Fatal("nil scenario has a failure")
	}
	if sc.Overrun(0) != 0 || sc.DeadProcs() != nil {
		t.Fatal("nil scenario injects faults")
	}
	if sc.String() != "fault-free" {
		t.Fatalf("String = %q", sc.String())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Scenario{
		{Faults: []Fault{{Kind: ProcFailure, Proc: 4, At: 0}}},                                    // proc out of range
		{Faults: []Fault{{Kind: ProcFailure, Proc: 0, At: -1}}},                                   // negative instant
		{Faults: []Fault{{Kind: ProcFailure, Proc: 1, At: 3}, {Kind: ProcFailure, Proc: 1, At: 9}}}, // double failure
		{Faults: []Fault{{Kind: ExecOverrun, Task: 10, Extra: 1}}},                                // task out of range
		{Faults: []Fault{{Kind: ExecOverrun, Task: 0, Extra: 0}}},                                 // zero overrun
		{Faults: []Fault{{Kind: Kind(99)}}},                                                      // unknown kind
	}
	for i, sc := range cases {
		sc := sc
		if err := sc.Validate(10, 4); err == nil {
			t.Errorf("case %d: Validate accepted %v", i, sc.Faults)
		}
	}
}

func TestModelDeterminism(t *testing.T) {
	g := gen.New(gen.Defaults(), 11).Graph()
	plat := platform.New(4)

	draw := func(seed int64) []Fault {
		m := NewModel(seed)
		out := []Fault{m.ProcFailure(plat, 100)}
		return append(out, m.Overruns(g, 0.3, 0.5)...)
	}
	a, b := draw(42), draw(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	c := draw(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestModelDrawsInRange(t *testing.T) {
	g := gen.New(gen.Defaults(), 12).Graph()
	plat := platform.New(3)
	m := NewModel(7)
	for i := 0; i < 200; i++ {
		f := m.ProcFailure(plat, 50)
		if f.Proc < 0 || int(f.Proc) >= plat.M || f.At < 0 || f.At >= 50 {
			t.Fatalf("draw %d out of range: %v", i, f)
		}
	}
	if f := m.ProcFailure(plat, 0); f.At != 0 {
		t.Fatalf("zero horizon should fail at t=0, got %v", f)
	}
	for _, f := range m.Overruns(g, 1.0, 0.5) {
		max := taskgraph.Time(float64(g.Task(f.Task).Exec) * 0.5)
		if max < 1 {
			max = 1
		}
		if f.Extra < 1 || f.Extra > max {
			t.Fatalf("overrun %v outside [1,%d]", f, max)
		}
	}
	if got := m.Overruns(g, 0, 0.5); got != nil {
		t.Fatalf("prob=0 still drew overruns: %v", got)
	}
	sc := &Scenario{Faults: m.Overruns(g, 1.0, 0.5)}
	if err := sc.Validate(g.NumTasks(), plat.M); err != nil {
		t.Fatal(err)
	}
}
