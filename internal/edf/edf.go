// Package edf implements the greedy Earliest-Deadline-First list scheduler
// of the paper's §4.4. It serves two roles: the polynomial-time reference
// algorithm in every experiment plot, and the source of the initial
// upper-bound solution cost U for the branch-and-bound algorithm (which §6
// credits with a >200% search-performance improvement over a naive positive
// initial bound).
//
// At each of the n scheduling steps the algorithm selects, from all
// currently schedulable (ready) tasks, the one with the closest absolute
// deadline, and places it — using the §4.3 non-preemptive append-only
// operation — on the processor that yields the earliest start time. Ties on
// deadline and on start time are broken toward the smaller task ID and the
// smaller processor index, respectively, keeping the algorithm fully
// deterministic.
package edf

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Result carries the schedule produced by the EDF heuristic together with
// the quantities the experiment harness reports.
type Result struct {
	Schedule *sched.Schedule

	// Lmax is the maximum task lateness of the schedule.
	Lmax taskgraph.Time

	// Steps is the number of scheduling decisions taken (always n); it is
	// the EDF reference line in the paper's "searched vertices" plots.
	Steps int
}

// Schedule runs the EDF heuristic to completion. It returns an error only
// for structurally unusable inputs (cyclic graph, bad platform); a complete
// schedule always exists for a valid DAG because the operation never rejects
// a placement — deadline misses surface as positive lateness, not errors.
func Schedule(g *taskgraph.Graph, p platform.Platform) (Result, error) {
	if err := p.ValidateFor(g.NumTasks()); err != nil {
		return Result{}, err
	}
	if _, err := g.TopoOrder(); err != nil {
		return Result{}, err
	}
	st := sched.NewState(g, p)
	n := g.NumTasks()
	ready := make([]taskgraph.TaskID, 0, n)
	for step := 0; step < n; step++ {
		ready = st.ReadyTasks(ready[:0])
		if len(ready) == 0 {
			return Result{}, fmt.Errorf("edf: no ready task at step %d of %d (graph inconsistent)", step, n)
		}
		// Closest absolute deadline, smallest ID on ties. ReadyTasks yields
		// ascending IDs, so strict < keeps the first (smallest) ID.
		best := ready[0]
		for _, id := range ready[1:] {
			if g.Task(id).AbsDeadline() < g.Task(best).AbsDeadline() {
				best = id
			}
		}
		// Earliest finish over allowed processors, smallest index on ties.
		// On homogeneous platforms every processor finishes EST+c, so this
		// is exactly the paper's earliest-start rule; with speed factors
		// the finish time is the quantity the greedy should minimize, and
		// affinity masks restrict the candidates.
		bestProc := platform.NoProc
		bestFinish := taskgraph.Infinity
		for q := 0; q < p.M; q++ {
			if !p.Allows(best, platform.Proc(q)) {
				continue
			}
			if f := st.EST(best, platform.Proc(q)) + st.ExecOn(best, platform.Proc(q)); f < bestFinish {
				bestFinish, bestProc = f, platform.Proc(q)
			}
		}
		st.Place(best, bestProc)
	}
	return Result{Schedule: st.Snapshot(), Lmax: st.Lmax(), Steps: n}, nil
}

// UpperBound returns the EDF schedule's maximum lateness, the initial
// upper-bound solution cost U recommended by the paper. The second return
// is the schedule itself so callers can seed the incumbent solution, not
// just its cost.
func UpperBound(g *taskgraph.Graph, p platform.Platform) (taskgraph.Time, *sched.Schedule, error) {
	res, err := Schedule(g, p)
	if err != nil {
		return 0, nil, err
	}
	return res.Lmax, res.Schedule, nil
}
