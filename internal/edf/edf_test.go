package edf

import (
	"testing"

	"repro/internal/deadline"
	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/taskgraph"
)

func TestScheduleCompletesAndValidates(t *testing.T) {
	g := gen.New(gen.Defaults(), 21)
	for i := 0; i < 100; i++ {
		tg := g.Graph()
		if err := deadline.Assign(tg, 1.5, deadline.EqualSlack); err != nil {
			t.Fatal(err)
		}
		for m := 1; m <= 4; m++ {
			res, err := Schedule(tg, platform.New(m))
			if err != nil {
				t.Fatalf("graph %d m=%d: %v", i, m, err)
			}
			if !res.Schedule.Complete() {
				t.Fatalf("graph %d m=%d: incomplete schedule", i, m)
			}
			if err := res.Schedule.Check(); err != nil {
				t.Fatalf("graph %d m=%d: invalid schedule: %v", i, m, err)
			}
			if res.Lmax != res.Schedule.Lmax() {
				t.Fatalf("graph %d m=%d: reported Lmax %d != schedule Lmax %d",
					i, m, res.Lmax, res.Schedule.Lmax())
			}
			if res.Steps != tg.NumTasks() {
				t.Fatalf("graph %d m=%d: %d steps for %d tasks", i, m, res.Steps, tg.NumTasks())
			}
		}
	}
}

func TestEDFPrefersCloserDeadline(t *testing.T) {
	// Two independent tasks on one processor; the one with the closer
	// absolute deadline must run first even though it has the larger ID.
	g := taskgraph.New(2)
	a := g.AddTask(taskgraph.Task{Exec: 5, Deadline: 100})
	b := g.AddTask(taskgraph.Task{Exec: 5, Deadline: 20})
	res, err := Schedule(g, platform.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Start(b) != 0 || res.Schedule.Start(a) != 5 {
		t.Fatalf("order wrong: a@%d b@%d", res.Schedule.Start(a), res.Schedule.Start(b))
	}
}

func TestEDFTieBreaksDeterministically(t *testing.T) {
	// Equal deadlines: smaller ID first. Equal ESTs: smaller processor.
	g := taskgraph.Independent(2, 5)
	res, err := Schedule(g, platform.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Proc(0) != 0 || res.Schedule.Proc(1) != 1 {
		t.Fatalf("procs: %d, %d; want 0, 1", res.Schedule.Proc(0), res.Schedule.Proc(1))
	}
	if res.Schedule.Start(0) != 0 || res.Schedule.Start(1) != 0 {
		t.Fatal("independent tasks should start at 0 on separate processors")
	}
}

func TestEDFPicksEarliestStartProcessor(t *testing.T) {
	// Chain a→b with a large message: b starts earlier on a's processor
	// (no comm) than on the idle one (comm 10).
	g := taskgraph.Chain(2, 5, 10)
	res, err := Schedule(g, platform.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Proc(1) != res.Schedule.Proc(0) {
		t.Fatal("EDF shipped the message instead of co-locating")
	}
	if res.Schedule.Start(1) != 5 {
		t.Fatalf("b starts at %d, want 5", res.Schedule.Start(1))
	}

	// With a tiny message, spreading wins when the first processor is busy:
	// fork a→{b,c}; after a and b, c goes to the other processor.
	fj := taskgraph.ForkJoin(2, 5, 1)
	res, err = Schedule(fj, platform.New(2))
	if err != nil {
		t.Fatal(err)
	}
	mids := []taskgraph.TaskID{1, 2}
	if res.Schedule.Proc(mids[0]) == res.Schedule.Proc(mids[1]) {
		t.Fatal("EDF serialized parallel tasks despite an idle processor")
	}
}

func TestEDFRejectsBadInputs(t *testing.T) {
	g := taskgraph.New(2)
	a := g.AddTask(taskgraph.Task{Exec: 1, Deadline: 10})
	b := g.AddTask(taskgraph.Task{Exec: 1, Deadline: 10})
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 0)
	if _, err := Schedule(g, platform.New(1)); err == nil {
		t.Fatal("cyclic graph accepted")
	}
	if _, err := Schedule(taskgraph.Diamond(), platform.Platform{M: 0}); err == nil {
		t.Fatal("bad platform accepted")
	}
}

func TestUpperBound(t *testing.T) {
	g := taskgraph.Diamond()
	u, s, err := UpperBound(g, platform.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || !s.Complete() {
		t.Fatal("upper bound without a complete incumbent")
	}
	if u != s.Lmax() {
		t.Fatalf("U=%d != schedule Lmax %d", u, s.Lmax())
	}
}

func TestEDFMoreProcessorsNeverHurtsOnForkJoin(t *testing.T) {
	// Not a theorem for EDF in general, but on a clean fork-join it must
	// hold and pins down the comm/parallelism trade-off implementation.
	g := taskgraph.ForkJoin(4, 10, 1)
	prev := taskgraph.Infinity
	for m := 1; m <= 4; m++ {
		res, err := Schedule(g, platform.New(m))
		if err != nil {
			t.Fatal(err)
		}
		if res.Lmax > prev {
			t.Fatalf("m=%d worsened Lmax: %d > %d", m, res.Lmax, prev)
		}
		prev = res.Lmax
	}
}
