package edf

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// SchedulePartitioned runs the EDF heuristic under a fixed task→processor
// assignment: the partitioned-scheduling execution model, where a
// partitioning algorithm (the hetero branch-and-bound, a first-fit
// heuristic, ...) decides WHERE every task runs and per-processor EDF
// decides WHEN. At each step the earliest-absolute-deadline ready task
// (smallest ID on ties) is appended to its assigned processor via the §4.3
// operation — which orders every processor's local queue by deadline among
// its ready tasks while still honouring cross-processor precedence and
// communication. The simulation is fully deterministic, so an assignment
// has exactly one cost: the evaluation function the partitioned search
// optimizes.
func SchedulePartitioned(g *taskgraph.Graph, p platform.Platform, assign []platform.Proc) (Result, error) {
	if err := p.ValidateFor(g.NumTasks()); err != nil {
		return Result{}, err
	}
	if _, err := g.TopoOrder(); err != nil {
		return Result{}, err
	}
	n := g.NumTasks()
	if len(assign) != n {
		return Result{}, fmt.Errorf("edf: %d assignments for %d tasks", len(assign), n)
	}
	for id, q := range assign {
		if q < 0 || int(q) >= p.M {
			return Result{}, fmt.Errorf("edf: task %d assigned to invalid processor %d", id, q)
		}
		if !p.Allows(taskgraph.TaskID(id), q) {
			return Result{}, fmt.Errorf("edf: task %d assigned to processor %d excluded by its affinity mask", id, q)
		}
	}
	st := sched.NewState(g, p)
	PartitionedLmax(st, assign, make([]taskgraph.TaskID, 0, n))
	return Result{Schedule: st.Snapshot(), Lmax: st.Lmax(), Steps: n}, nil
}

// PartitionedLmax runs the partitioned-EDF simulation on a caller-provided
// state (Reset + n Places, no allocation beyond the ready buffer's growth)
// and returns the schedule's maximum lateness. It is the evaluation
// function the partitioned branch-and-bound calls once per complete
// assignment; SchedulePartitioned is its validating, allocating wrapper.
// The assignment must be complete and affinity-feasible — st.Place panics
// otherwise, which is the search-layer-bug contract of the substrate.
func PartitionedLmax(st *sched.State, assign []platform.Proc, ready []taskgraph.TaskID) taskgraph.Time {
	g := st.G
	st.Reset()
	n := g.NumTasks()
	for step := 0; step < n; step++ {
		ready = st.ReadyTasks(ready[:0])
		best := ready[0]
		for _, id := range ready[1:] {
			if g.Task(id).AbsDeadline() < g.Task(best).AbsDeadline() {
				best = id
			}
		}
		st.Place(best, assign[best])
	}
	return st.Lmax()
}
