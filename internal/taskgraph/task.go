// Package taskgraph models the real-time application of Jonsson & Shin
// (ICPP'97): a set of tasks characterized by the 4-tuple ⟨c_i, φ_i, d_i, T_i⟩
// whose precedence constraints and communication demands form a directed
// acyclic task graph G = (N, A).
//
// The package is the base substrate of the repository: it owns the Time
// representation, the Task and Channel records, the Graph container with its
// partial order ≺, and the structural analyses (topological order, levels,
// longest execution paths, traversal orders) that the deadline-assignment,
// scheduling and branch-and-bound layers are built on.
package taskgraph

import (
	"fmt"
	"math"
)

// Time is the discrete time unit used throughout the system. All task
// execution times, phasings, deadlines, periods, message transfer costs and
// schedule instants are expressed in Time ticks. Lateness values may be
// negative (a task finishing before its deadline has negative lateness).
type Time int64

// Infinity is a quarter of the int64 range: large enough to dominate any
// legitimate schedule instant, small enough that sums of a few Infinity
// values cannot overflow int64.
const Infinity Time = math.MaxInt64 / 4

// MinTime mirrors Infinity on the negative side. It is the identity element
// for max-reductions over Time values.
const MinTime Time = -Infinity

// MaxTime returns the larger of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTimeOf returns the smaller of a and b.
func MinTimeOf(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// TaskID identifies a task within one Graph. IDs are dense: the i-th task
// added to a graph receives ID i. The zero graph has no valid IDs.
type TaskID int32

// NoTask is the sentinel "no task" ID, used for optional references such as
// the scheduled task of a branch-and-bound root vertex.
const NoTask TaskID = -1

// Task is the static description of one real-time task τ_i. In the paper's
// notation a task is the 4-tuple ⟨c_i, φ_i, d_i, T_i⟩; the dynamic behaviour
// of invocation k is derived from it (see Arrival and AbsDeadline for k=1,
// and package periodic for k>1).
type Task struct {
	// ID is the task's identity within its graph. It is assigned by
	// Graph.AddTask and must not be modified afterwards.
	ID TaskID `json:"id"`

	// Name is an optional human-readable label used by renderers and DOT
	// export. It does not affect scheduling.
	Name string `json:"name,omitempty"`

	// Exec is the worst-case execution time c_i, inclusive of architectural
	// overheads (cache misses, pipeline hazards, context switches) and the
	// constant cost of packetizing/depacketizing messages. Must be > 0.
	Exec Time `json:"exec"`

	// Phase is the phasing φ_i: the earliest time, relative to the time
	// origin, at which the first invocation of the task may start.
	Phase Time `json:"phase"`

	// Deadline is the relative deadline d_i: the time within which the task
	// must complete once invoked. Must satisfy Deadline >= Exec for the
	// task to be schedulable at all, and Deadline <= Period for periodic
	// tasks (so execution windows of consecutive invocations never overlap).
	Deadline Time `json:"deadline"`

	// Period is the inter-invocation interval T_i. Period == 0 denotes an
	// aperiodic (one-shot) task, the mode used by the paper's experiments.
	Period Time `json:"period,omitempty"`
}

// Arrival returns the absolute arrival time a_i^1 = φ_i of the task's first
// invocation: the earliest instant it is allowed to start executing.
func (t Task) Arrival() Time { return t.Phase }

// AbsDeadline returns the absolute deadline D_i^1 = a_i^1 + d_i of the
// task's first invocation: the instant by which it must have completed.
func (t Task) AbsDeadline() Time { return t.Phase + t.Deadline }

// ArrivalK returns the absolute arrival time a_i^k = φ_i + T_i·(k−1) of the
// k-th invocation (k >= 1). For aperiodic tasks only k == 1 is meaningful.
func (t Task) ArrivalK(k int) Time {
	return t.Phase + t.Period*Time(k-1)
}

// AbsDeadlineK returns the absolute deadline D_i^k = a_i^k + d_i of the k-th
// invocation (k >= 1).
func (t Task) AbsDeadlineK(k int) Time {
	return t.ArrivalK(k) + t.Deadline
}

// WindowLength returns |w_i| = D_i − a_i = d_i, the length of the task's
// execution window.
func (t Task) WindowLength() Time { return t.Deadline }

// Validate reports whether the static task parameters are internally
// consistent: positive execution time, non-negative phase, a window long
// enough to hold the execution time, and (for periodic tasks) d_i <= T_i.
func (t Task) Validate() error {
	if t.Exec <= 0 {
		return fmt.Errorf("task %d (%s): non-positive execution time %d", t.ID, t.Name, t.Exec)
	}
	if t.Phase < 0 {
		return fmt.Errorf("task %d (%s): negative phase %d", t.ID, t.Name, t.Phase)
	}
	if t.Deadline < t.Exec {
		return fmt.Errorf("task %d (%s): window %d shorter than execution time %d", t.ID, t.Name, t.Deadline, t.Exec)
	}
	if t.Period != 0 && t.Deadline > t.Period {
		return fmt.Errorf("task %d (%s): deadline %d exceeds period %d", t.ID, t.Name, t.Deadline, t.Period)
	}
	return nil
}

func (t Task) String() string {
	name := t.Name
	if name == "" {
		name = fmt.Sprintf("τ%d", t.ID)
	}
	return fmt.Sprintf("%s⟨c=%d φ=%d d=%d T=%d⟩", name, t.Exec, t.Phase, t.Deadline, t.Period)
}

// Channel is the communication channel χ_{i,j} that handles message transfer
// from task τ_i to task τ_j, characterized by ⟨m_{i,j}, a_{i,j}, d_{i,j}⟩.
// The real cost of the transfer depends on the processors the endpoint tasks
// are assigned to and is computed by the platform layer.
type Channel struct {
	// Src and Dst are the producing and consuming tasks. The pair also
	// appears as the arc (τ_i, τ_j) in the precedence relation.
	Src TaskID `json:"src"`
	Dst TaskID `json:"dst"`

	// Size is the maximum message size m_{i,j} in data items. A size of 0
	// denotes a pure precedence constraint with no data transfer.
	Size Time `json:"size"`

	// Arrival is the message arrival time a_{i,j}. It is derived during
	// deadline assignment; the zero value means "unassigned".
	Arrival Time `json:"arrival,omitempty"`

	// Deadline is the relative message deadline d_{i,j}. It is derived
	// during deadline assignment; the zero value means "unassigned".
	Deadline Time `json:"deadline,omitempty"`
}

func (c Channel) String() string {
	return fmt.Sprintf("χ(%d→%d, m=%d)", c.Src, c.Dst, c.Size)
}
