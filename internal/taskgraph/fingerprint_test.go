package taskgraph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// randomDAG builds a random attributed DAG: tasks with random ⟨c, φ, d, T⟩
// and forward arcs with random channel attributes. Period is left 0 (the
// aperiodic mode of the experiments) for half the seeds and harmonic for
// the rest, so both forms are covered.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		exec := Time(1 + rng.Intn(40))
		t := Task{
			Exec:     exec,
			Phase:    Time(rng.Intn(20)),
			Deadline: exec + Time(rng.Intn(100)),
		}
		if rng.Intn(2) == 0 {
			t.Period = t.Deadline + Time(rng.Intn(50))
		}
		g.AddTask(t)
	}
	for dst := 1; dst < n; dst++ {
		for _, src := range rng.Perm(dst)[:rng.Intn(min(dst, 3)+1)] {
			g.MustAddEdge(TaskID(src), TaskID(dst), Time(rng.Intn(30)))
			ch, _ := g.ChannelPtr(TaskID(src), TaskID(dst))
			ch.Arrival, ch.Deadline = Time(rng.Intn(10)), Time(rng.Intn(10))
		}
	}
	return g
}

func randomPerm(rng *rand.Rand, n int) []TaskID {
	perm := make([]TaskID, n)
	for i, p := range rng.Perm(n) {
		perm[i] = TaskID(p)
	}
	return perm
}

// TestFingerprintDeterministic pins that the digest is a pure function of
// the graph: repeated computation and computation on a deep copy agree.
func TestFingerprintDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		g := randomDAG(rng, 2+rng.Intn(18))
		fp := g.Fingerprint()
		if fp.IsZero() {
			t.Fatal("zero fingerprint")
		}
		if got := g.Fingerprint(); got != fp {
			t.Fatalf("instance %d: fingerprint not deterministic", i)
		}
		if got := g.Clone().Fingerprint(); got != fp {
			t.Fatalf("instance %d: clone fingerprint differs", i)
		}
	}
}

// TestFingerprintRelabelingInvariant is the canonicality property: the same
// DAG under a permuted task numbering hashes identically, even though the
// JSON encodings differ.
func TestFingerprintRelabelingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		g := randomDAG(rng, 2+rng.Intn(18))
		fp := g.Fingerprint()
		for k := 0; k < 3; k++ {
			perm := randomPerm(rng, g.NumTasks())
			rg, err := Relabel(g, perm)
			if err != nil {
				t.Fatalf("instance %d: Relabel: %v", i, err)
			}
			if got := rg.Fingerprint(); got != fp {
				t.Fatalf("instance %d perm %d: relabeled fingerprint differs\nperm=%v", i, k, perm)
			}
		}
	}
}

// TestFingerprintSensitivity pins the other half of the contract: any edit
// to a task's ⟨c, φ, d, T⟩, to a channel attribute, or to the arc set
// changes the digest.
func TestFingerprintSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 60; i++ {
		g := randomDAG(rng, 3+rng.Intn(15))
		fp := g.Fingerprint()
		id := TaskID(rng.Intn(g.NumTasks()))

		edits := []struct {
			name string
			edit func(*Graph) bool // returns false when inapplicable
		}{
			{"exec", func(m *Graph) bool { m.TaskPtr(id).Exec++; return true }},
			{"phase", func(m *Graph) bool { m.TaskPtr(id).Phase++; return true }},
			{"deadline", func(m *Graph) bool { m.TaskPtr(id).Deadline++; return true }},
			{"period", func(m *Graph) bool { m.TaskPtr(id).Period += 7; return true }},
			{"channel size", func(m *Graph) bool {
				if m.NumEdges() == 0 {
					return false
				}
				c := m.Channels()[rng.Intn(m.NumEdges())]
				ch, _ := m.ChannelPtr(c.Src, c.Dst)
				ch.Size++
				return true
			}},
			{"channel window", func(m *Graph) bool {
				if m.NumEdges() == 0 {
					return false
				}
				c := m.Channels()[rng.Intn(m.NumEdges())]
				ch, _ := m.ChannelPtr(c.Src, c.Dst)
				ch.Deadline++
				return true
			}},
			{"added arc", func(m *Graph) bool {
				for a := 0; a < m.NumTasks(); a++ {
					for b := a + 1; b < m.NumTasks(); b++ {
						if _, dup := m.Channel(TaskID(a), TaskID(b)); !dup {
							m.MustAddEdge(TaskID(a), TaskID(b), 5)
							return true
						}
					}
				}
				return false
			}},
		}
		for _, e := range edits {
			m := g.Clone()
			if !e.edit(m) {
				continue
			}
			if m.Fingerprint() == fp {
				t.Fatalf("instance %d: edit %q did not change the fingerprint", i, e.name)
			}
		}
	}
}

// TestFingerprintNameInsensitive pins that renaming tasks — which never
// affects scheduling — does not change the digest.
func TestFingerprintNameInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomDAG(rng, 12)
	fp := g.Fingerprint()
	for i := 0; i < g.NumTasks(); i++ {
		g.TaskPtr(TaskID(i)).Name = "renamed"
	}
	if g.Fingerprint() != fp {
		t.Fatal("renaming tasks changed the fingerprint")
	}
}

// TestCanonicalIsRelabelingOfInput pins that Canonical returns exactly
// Relabel(g, perm): same instance, new numbering, nothing dropped.
func TestCanonicalIsRelabelingOfInput(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 50; i++ {
		g := randomDAG(rng, 2+rng.Intn(18))
		canon, perm, err := g.Canonical()
		if err != nil {
			t.Fatalf("instance %d: Canonical: %v", i, err)
		}
		want, err := Relabel(g, perm)
		if err != nil {
			t.Fatalf("instance %d: Canonical returned a bad permutation %v: %v", i, perm, err)
		}
		cb, err := json.Marshal(canon)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cb, wb) {
			t.Fatalf("instance %d: canonical graph is not Relabel(g, perm)", i)
		}
		if canon.Fingerprint() != g.Fingerprint() {
			t.Fatalf("instance %d: canonicalization changed the fingerprint", i)
		}
	}
}

// TestCanonicalBytesRelabelingInvariant is the exact-identity property the
// serving cache keys on: any relabeling of an instance canonicalizes to
// byte-identical codec bytes, so isomorphic requests share a cache line
// while (unlike the WL fingerprint alone) structurally different graphs
// never can — the key IS the encoding.
func TestCanonicalBytesRelabelingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 60; i++ {
		g := randomDAG(rng, 2+rng.Intn(18))
		canon, _, err := g.Canonical()
		if err != nil {
			t.Fatalf("instance %d: Canonical: %v", i, err)
		}
		base, err := json.Marshal(canon)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			perm := randomPerm(rng, g.NumTasks())
			rg, err := Relabel(g, perm)
			if err != nil {
				t.Fatalf("instance %d: Relabel: %v", i, err)
			}
			rcanon, _, err := rg.Canonical()
			if err != nil {
				t.Fatalf("instance %d: Canonical(relabeled): %v", i, err)
			}
			got, err := json.Marshal(rcanon)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, base) {
				t.Fatalf("instance %d perm %d: canonical bytes differ under relabeling\nperm=%v", i, k, perm)
			}
		}
	}
}

func TestRelabelRejectsBadPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomDAG(rng, 5)
	for _, perm := range [][]TaskID{
		{0, 1, 2},             // wrong length
		{0, 1, 2, 3, 5},       // out of range
		{0, 1, 2, 2, 3},       // not injective
		{-1, 0, 1, 2, 3},      // negative
	} {
		if _, err := Relabel(g, perm); err == nil {
			t.Errorf("Relabel accepted bad permutation %v", perm)
		}
	}
}
