package taskgraph

import "fmt"

// This file provides canonical small graphs used throughout the repository's
// tests, examples and documentation. All fixtures produce validated graphs;
// deadlines are generous placeholders unless stated otherwise — callers that
// care about lateness shapes run the deadline-assignment layer on top.

// Chain returns a linear chain of n tasks, each with execution time exec and
// message size msg on every arc. Task windows are wide open ([0, n·exec·4]).
func Chain(n int, exec, msg Time) *Graph {
	g := New(n)
	horizon := Time(n) * exec * 4
	for i := 0; i < n; i++ {
		g.AddTask(Task{Name: fmt.Sprintf("c%d", i), Exec: exec, Deadline: horizon})
	}
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(TaskID(i), TaskID(i+1), msg)
	}
	return g
}

// ForkJoin returns a fork-join graph: one source task, width parallel middle
// tasks, one sink task. All tasks have execution time exec; all arcs carry
// msg data items. This is the highest-parallelism fixture and the canonical
// stressor for the contention-aware lower bound LB1.
func ForkJoin(width int, exec, msg Time) *Graph {
	g := New(width + 2)
	horizon := Time(width+2) * exec * 4
	src := g.AddTask(Task{Name: "fork", Exec: exec, Deadline: horizon})
	mids := make([]TaskID, width)
	for i := 0; i < width; i++ {
		mids[i] = g.AddTask(Task{Name: fmt.Sprintf("mid%d", i), Exec: exec, Deadline: horizon})
	}
	sink := g.AddTask(Task{Name: "join", Exec: exec, Deadline: horizon})
	for _, m := range mids {
		g.MustAddEdge(src, m, msg)
		g.MustAddEdge(m, sink, msg)
	}
	return g
}

// Diamond returns the four-task diamond a→{b,c}→d with distinct execution
// times (2, 3, 5, 2) and unit messages, windows wide open. It is the
// smallest graph on which task ordering and processor assignment both
// matter, and is used pervasively in unit tests.
func Diamond() *Graph {
	g := New(4)
	a := g.AddTask(Task{Name: "a", Exec: 2, Deadline: 100})
	b := g.AddTask(Task{Name: "b", Exec: 3, Deadline: 100})
	c := g.AddTask(Task{Name: "c", Exec: 5, Deadline: 100})
	d := g.AddTask(Task{Name: "d", Exec: 2, Deadline: 100})
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 1)
	g.MustAddEdge(b, d, 1)
	g.MustAddEdge(c, d, 1)
	return g
}

// LadderGraph returns a two-rail "ladder" of 2·rungs tasks: two parallel
// chains with cross arcs from the left rail to the right rail at every rung.
// It mixes chain and fork structure and exercises multi-predecessor ready
// logic in the branching rules.
func LadderGraph(rungs int, exec, msg Time) *Graph {
	g := New(2 * rungs)
	horizon := Time(rungs) * exec * 8
	left := make([]TaskID, rungs)
	right := make([]TaskID, rungs)
	for i := 0; i < rungs; i++ {
		left[i] = g.AddTask(Task{Name: fmt.Sprintf("L%d", i), Exec: exec, Deadline: horizon})
		right[i] = g.AddTask(Task{Name: fmt.Sprintf("R%d", i), Exec: exec, Deadline: horizon})
	}
	for i := 0; i < rungs-1; i++ {
		g.MustAddEdge(left[i], left[i+1], msg)
		g.MustAddEdge(right[i], right[i+1], msg)
	}
	for i := 0; i < rungs-1; i++ {
		g.MustAddEdge(left[i], right[i+1], msg)
	}
	return g
}

// Independent returns n tasks with no precedence constraints at all: the
// n!·m^n worst case for the search-tree size discussed in the paper's §3.
func Independent(n int, exec Time) *Graph {
	g := New(n)
	horizon := Time(n) * exec * 4
	for i := 0; i < n; i++ {
		g.AddTask(Task{Name: fmt.Sprintf("i%d", i), Exec: exec, Deadline: horizon})
	}
	return g
}
