package taskgraph

import (
	"testing"
)

// bruteAntichain finds the maximum antichain by subset enumeration
// (n <= ~18).
func bruteAntichain(g *Graph) int {
	n := g.NumTasks()
	comparable := make([][]bool, n)
	for i := range comparable {
		comparable[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if i != j && (g.HasPath(TaskID(i), TaskID(j)) || g.HasPath(TaskID(j), TaskID(i))) {
				comparable[i][j] = true
			}
		}
	}
	best := 0
	for mask := 0; mask < 1<<uint(n); mask++ {
		ok := true
		size := 0
		for i := 0; i < n && ok; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			size++
			for j := i + 1; j < n; j++ {
				if mask&(1<<uint(j)) != 0 && comparable[i][j] {
					ok = false
					break
				}
			}
		}
		if ok && size > best {
			best = size
		}
	}
	return best
}

func TestMaxAntichainFixtures(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"chain", Chain(6, 3, 0), 1},
		{"independent", Independent(5, 2), 5},
		{"diamond", Diamond(), 2},
		{"forkjoin4", ForkJoin(4, 3, 1), 4},
		{"empty", New(0), 0},
	}
	for _, c := range cases {
		if got := c.g.MaxAntichain(); got != c.want {
			t.Errorf("%s: MaxAntichain = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestMaxAntichainAgainstBruteForce(t *testing.T) {
	graphs := map[string]*Graph{
		"ladder3":  LadderGraph(3, 2, 1),
		"ladder5":  LadderGraph(5, 2, 1),
		"forkjoin": ForkJoin(6, 2, 1),
		"diamond":  Diamond(),
	}
	for name, g := range graphs {
		want := bruteAntichain(g)
		if got := g.MaxAntichain(); got != want {
			t.Errorf("%s: MaxAntichain = %d, brute force %d", name, got, want)
		}
	}
}

func TestMaxAntichainAtLeastLevelWidth(t *testing.T) {
	// The per-level width is always a valid antichain (same level ⇒
	// incomparable), so MaxAntichain >= Width.
	for name, g := range map[string]*Graph{
		"ladder":  LadderGraph(4, 3, 1),
		"fork":    ForkJoin(5, 2, 1),
		"diamond": Diamond(),
	} {
		if g.MaxAntichain() < g.Width() {
			t.Errorf("%s: antichain %d below level width %d", name, g.MaxAntichain(), g.Width())
		}
	}
}

func TestAntichainAtIsValidAndMaximum(t *testing.T) {
	for name, g := range map[string]*Graph{
		"ladder":   LadderGraph(4, 2, 1),
		"forkjoin": ForkJoin(4, 3, 1),
		"diamond":  Diamond(),
		"chain":    Chain(5, 2, 0),
		"indep":    Independent(6, 1),
	} {
		anti := g.AntichainAt()
		if len(anti) != g.MaxAntichain() {
			t.Errorf("%s: witness size %d != MaxAntichain %d", name, len(anti), g.MaxAntichain())
		}
		for i := 0; i < len(anti); i++ {
			for j := i + 1; j < len(anti); j++ {
				if g.HasPath(anti[i], anti[j]) || g.HasPath(anti[j], anti[i]) {
					t.Errorf("%s: witness contains comparable pair %d, %d", name, anti[i], anti[j])
				}
			}
		}
	}
}

func TestMaxAntichainOnTransitiveEdges(t *testing.T) {
	// a→b→c plus the redundant a→c: antichain is still 1.
	g := New(3)
	a := g.AddTask(Task{Exec: 1, Deadline: 10})
	b := g.AddTask(Task{Exec: 1, Deadline: 10})
	c := g.AddTask(Task{Exec: 1, Deadline: 10})
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(a, c, 0)
	if got := g.MaxAntichain(); got != 1 {
		t.Fatalf("MaxAntichain = %d, want 1", got)
	}
}
