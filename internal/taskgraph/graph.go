package taskgraph

import (
	"fmt"
	"sort"
)

// Graph is the directed acyclic task graph G = (N, A). Nodes are tasks,
// arcs are precedence constraints annotated with message sizes (channels).
//
// A Graph is built incrementally with AddTask and AddEdge and then treated
// as immutable by the analysis and scheduling layers. Structural analyses
// (topological order, levels, longest paths) are cached lazily and
// invalidated by any mutation.
//
// The zero value is an empty graph ready for use.
type Graph struct {
	tasks []Task
	succs [][]TaskID
	preds [][]TaskID
	chans map[[2]TaskID]int // arc -> index into chanList
	list  []Channel

	// Lazily computed caches, invalidated by mutation.
	cache *analysisCache
}

// New returns an empty graph with capacity hints for n tasks.
func New(n int) *Graph {
	return &Graph{
		tasks: make([]Task, 0, n),
		succs: make([][]TaskID, 0, n),
		preds: make([][]TaskID, 0, n),
		chans: make(map[[2]TaskID]int, n),
		list:  make([]Channel, 0, n),
	}
}

// AddTask appends a task to the graph and returns its assigned ID. The ID
// field of the argument is overwritten; all other fields are kept.
func (g *Graph) AddTask(t Task) TaskID {
	id := TaskID(len(g.tasks))
	t.ID = id
	g.tasks = append(g.tasks, t)
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	g.cache = nil
	return id
}

// AddEdge records the precedence constraint τ_src ≺ τ_dst together with a
// communication channel of the given message size. It returns an error when
// an endpoint is unknown, the edge would be a self-loop, or the edge already
// exists. Acyclicity is not checked here (it would make incremental
// construction quadratic); call Validate after construction.
func (g *Graph) AddEdge(src, dst TaskID, size Time) error {
	if !g.valid(src) || !g.valid(dst) {
		return fmt.Errorf("taskgraph: edge %d→%d references unknown task", src, dst)
	}
	if src == dst {
		return fmt.Errorf("taskgraph: self-loop on task %d", src)
	}
	if size < 0 {
		return fmt.Errorf("taskgraph: negative message size %d on edge %d→%d", size, src, dst)
	}
	key := [2]TaskID{src, dst}
	if _, dup := g.chans[key]; dup {
		return fmt.Errorf("taskgraph: duplicate edge %d→%d", src, dst)
	}
	g.chans[key] = len(g.list)
	g.list = append(g.list, Channel{Src: src, Dst: dst, Size: size})
	g.succs[src] = append(g.succs[src], dst)
	g.preds[dst] = append(g.preds[dst], src)
	g.cache = nil
	return nil
}

// MustAddEdge is AddEdge for statically known-good construction sites such
// as tests and examples; it panics on error.
func (g *Graph) MustAddEdge(src, dst TaskID, size Time) {
	if err := g.AddEdge(src, dst, size); err != nil {
		panic(fmt.Errorf("taskgraph: MustAddEdge(%d, %d): %w", src, dst, err))
	}
}

func (g *Graph) valid(id TaskID) bool {
	return id >= 0 && int(id) < len(g.tasks)
}

// NumTasks returns n = |N|.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns |A|.
func (g *Graph) NumEdges() int { return len(g.list) }

// Task returns a copy of the task with the given ID. It panics on an
// invalid ID, which always indicates a programming error upstream.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// TaskPtr returns a pointer to the stored task, for in-place updates by the
// deadline-assignment layer. The structural fields (ID) must not be changed.
func (g *Graph) TaskPtr(id TaskID) *Task { return &g.tasks[id] }

// Tasks returns the task slice in ID order. The caller must not modify it.
func (g *Graph) Tasks() []Task { return g.tasks }

// Succs returns the direct successors of id (tasks τ_j with τ_id ≺· τ_j).
// The caller must not modify the returned slice.
func (g *Graph) Succs(id TaskID) []TaskID { return g.succs[id] }

// Preds returns the direct predecessors of id (tasks τ_j with τ_j ≺· τ_id).
// The caller must not modify the returned slice.
func (g *Graph) Preds(id TaskID) []TaskID { return g.preds[id] }

// Channel returns the channel on arc src→dst and whether the arc exists.
func (g *Graph) Channel(src, dst TaskID) (Channel, bool) {
	idx, ok := g.chans[[2]TaskID{src, dst}]
	if !ok {
		return Channel{}, false
	}
	return g.list[idx], true
}

// ChannelPtr returns a pointer to the stored channel for in-place updates
// (message deadline assignment). The endpoints must not be changed.
func (g *Graph) ChannelPtr(src, dst TaskID) (*Channel, bool) {
	idx, ok := g.chans[[2]TaskID{src, dst}]
	if !ok {
		return nil, false
	}
	return &g.list[idx], true
}

// MessageSize returns m_{src,dst}, or 0 when the arc does not exist. The
// zero default lets scheduling layers treat "no channel" and "zero-size
// channel" uniformly: neither induces communication cost.
func (g *Graph) MessageSize(src, dst TaskID) Time {
	if c, ok := g.Channel(src, dst); ok {
		return c.Size
	}
	return 0
}

// Channels returns all channels in insertion order. The caller must not
// modify the returned slice.
func (g *Graph) Channels() []Channel { return g.list }

// Inputs returns the IDs of all input tasks (no predecessors), in ID order.
func (g *Graph) Inputs() []TaskID {
	var in []TaskID
	for id := range g.tasks {
		if len(g.preds[id]) == 0 {
			in = append(in, TaskID(id))
		}
	}
	return in
}

// Outputs returns the IDs of all output tasks (no successors), in ID order.
func (g *Graph) Outputs() []TaskID {
	var out []TaskID
	for id := range g.tasks {
		if len(g.succs[id]) == 0 {
			out = append(out, TaskID(id))
		}
	}
	return out
}

// TotalWork returns Σ c_i over all tasks: the accumulated computational
// workload of the task graph.
func (g *Graph) TotalWork() Time {
	var w Time
	for i := range g.tasks {
		w += g.tasks[i].Exec
	}
	return w
}

// Clone returns a deep copy of the graph. Caches are not copied; they are
// recomputed on demand by the clone.
func (g *Graph) Clone() *Graph {
	c := New(len(g.tasks))
	c.tasks = append(c.tasks[:0], g.tasks...)
	c.succs = make([][]TaskID, len(g.succs))
	c.preds = make([][]TaskID, len(g.preds))
	for i := range g.succs {
		c.succs[i] = append([]TaskID(nil), g.succs[i]...)
		c.preds[i] = append([]TaskID(nil), g.preds[i]...)
	}
	c.list = append(c.list[:0], g.list...)
	for k, v := range g.chans {
		c.chans[k] = v
	}
	return c
}

// Validate checks the structural invariants the scheduling layers rely on:
// every task passes Task.Validate, and the precedence relation is an
// irreflexive partial order (i.e. the graph is acyclic).
func (g *Graph) Validate() error {
	for i := range g.tasks {
		if err := g.tasks[i].Validate(); err != nil {
			return err
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// HasPath reports whether τ_src ≺ τ_dst, i.e. dst is reachable from src by
// following one or more arcs. It runs a DFS and is O(|N|+|A|).
func (g *Graph) HasPath(src, dst TaskID) bool {
	if src == dst {
		return false
	}
	seen := make([]bool, len(g.tasks))
	stack := []TaskID{src}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succs[v] {
			if s == dst {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// IsDirectPredecessor reports whether τ_a ≺· τ_b in the paper's notation:
// a is a predecessor of b with no task strictly between them. With the
// graph's arcs taken as the direct-precedence relation this is simply arc
// membership, but the method additionally verifies the covering condition
// ¬(∃ τ_k : τ_a ≺ τ_k ∧ τ_k ≺ τ_b), which can fail when a graph was built
// with redundant (transitive) arcs.
func (g *Graph) IsDirectPredecessor(a, b TaskID) bool {
	if _, ok := g.Channel(a, b); !ok {
		return false
	}
	for _, k := range g.succs[a] {
		if k != b && g.HasPath(k, b) {
			return false
		}
	}
	return true
}

// TransitiveReduction returns a copy of the graph with all redundant arcs
// removed: an arc (a,b) is redundant when b is reachable from a through some
// other successor of a. Channels on removed arcs are dropped; their message
// sizes are NOT folded into remaining arcs because a redundant arc with data
// still represents a real message — graphs carrying data on transitive arcs
// should not be reduced.
func (g *Graph) TransitiveReduction() *Graph {
	r := New(len(g.tasks))
	for _, t := range g.tasks {
		r.AddTask(t)
	}
	for _, c := range g.list {
		redundant := false
		for _, mid := range g.succs[c.Src] {
			if mid != c.Dst && g.HasPath(mid, c.Dst) {
				redundant = true
				break
			}
		}
		if !redundant {
			r.MustAddEdge(c.Src, c.Dst, c.Size)
		}
	}
	return r
}

// SortedArcs returns the arcs sorted by (src, dst), for deterministic
// iteration in renderers and codecs.
func (g *Graph) SortedArcs() []Channel {
	arcs := append([]Channel(nil), g.list...)
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].Src != arcs[j].Src {
			return arcs[i].Src < arcs[j].Src
		}
		return arcs[i].Dst < arcs[j].Dst
	})
	return arcs
}

func (g *Graph) String() string {
	return fmt.Sprintf("taskgraph.Graph{n=%d, arcs=%d, work=%d}", g.NumTasks(), g.NumEdges(), g.TotalWork())
}
