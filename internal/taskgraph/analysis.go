package taskgraph

import (
	"fmt"
	"sort"
)

// analysisCache holds the lazily computed structural analyses. It is
// invalidated (set to nil) by every mutation of the graph.
type analysisCache struct {
	topo      []TaskID
	level     []int
	depth     int
	fromInput []Time // longest execution-time path from any input, inclusive
	toOutput  []Time // longest execution-time path to any output, inclusive
}

// ErrCycle is returned (wrapped) by TopoOrder and Validate when the
// precedence relation is not acyclic.
var ErrCycle = fmt.Errorf("taskgraph: precedence relation contains a cycle")

func (g *Graph) analyze() (*analysisCache, error) {
	if g.cache != nil {
		return g.cache, nil
	}
	n := len(g.tasks)
	c := &analysisCache{
		topo:      make([]TaskID, 0, n),
		level:     make([]int, n),
		fromInput: make([]Time, n),
		toOutput:  make([]Time, n),
	}

	// Kahn's algorithm; processing queue kept sorted by ID for determinism.
	indeg := make([]int, n)
	for id := range g.tasks {
		indeg[id] = len(g.preds[id])
	}
	var queue []TaskID
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, TaskID(id))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		c.topo = append(c.topo, v)
		for _, s := range g.succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(c.topo) != n {
		return nil, fmt.Errorf("%w (%d of %d tasks ordered)", ErrCycle, len(c.topo), n)
	}

	// Levels and longest execution paths in one forward pass…
	for _, v := range c.topo {
		lvl := 0
		from := g.tasks[v].Exec
		for _, p := range g.preds[v] {
			if c.level[p]+1 > lvl {
				lvl = c.level[p] + 1
			}
			if c.fromInput[p]+g.tasks[v].Exec > from {
				from = c.fromInput[p] + g.tasks[v].Exec
			}
		}
		c.level[v] = lvl
		c.fromInput[v] = from
		if lvl+1 > c.depth {
			c.depth = lvl + 1
		}
	}
	// …and one backward pass.
	for i := n - 1; i >= 0; i-- {
		v := c.topo[i]
		to := g.tasks[v].Exec
		for _, s := range g.succs[v] {
			if c.toOutput[s]+g.tasks[v].Exec > to {
				to = c.toOutput[s] + g.tasks[v].Exec
			}
		}
		c.toOutput[v] = to
	}

	g.cache = c
	return c, nil
}

// TopoOrder returns a topological order of the tasks (Kahn's algorithm with
// a deterministic FIFO work queue seeded in ID order), or an error wrapping
// ErrCycle when the graph is cyclic. The returned slice is shared with the
// cache and must not be modified.
func (g *Graph) TopoOrder() ([]TaskID, error) {
	c, err := g.analyze()
	if err != nil {
		return nil, err
	}
	return c.topo, nil
}

// mustAnalyze is used by accessors that are only called on validated graphs.
func (g *Graph) mustAnalyze() *analysisCache {
	c, err := g.analyze()
	if err != nil {
		panic(fmt.Errorf("taskgraph: accessor on unvalidated graph: %w", err))
	}
	return c
}

// Level returns the topological level of a task: 0 for input tasks, and
// 1 + max level over direct predecessors otherwise. This is the layering
// used by the breadth-first branching rule BF1 (after Hou & Shin's notion
// of task level). Panics on cyclic graphs.
func (g *Graph) Level(id TaskID) int { return g.mustAnalyze().level[id] }

// Depth returns the number of levels in the graph (the paper's "depth of
// the task graph"): max Level + 1. An empty graph has depth 0.
func (g *Graph) Depth() int {
	if g.NumTasks() == 0 {
		return 0
	}
	return g.mustAnalyze().depth
}

// LongestFromInput returns the largest accumulated execution time over all
// paths from any input task to id, inclusive of id's own execution time.
// This is the quantity the deadline-slicing layer allocates windows from.
func (g *Graph) LongestFromInput(id TaskID) Time { return g.mustAnalyze().fromInput[id] }

// LongestToOutput returns the largest accumulated execution time over all
// paths from id to any output task, inclusive of id's own execution time.
func (g *Graph) LongestToOutput(id TaskID) Time { return g.mustAnalyze().toOutput[id] }

// CriticalPathLength returns the largest accumulated execution time over
// all input→output paths: a lower bound on the makespan of any schedule on
// any number of processors (communication ignored).
func (g *Graph) CriticalPathLength() Time {
	var cp Time
	c := g.mustAnalyze()
	for id := range g.tasks {
		if c.fromInput[id] > cp {
			cp = c.fromInput[id]
		}
	}
	return cp
}

// Parallelism returns the average parallelism of the graph: total work
// divided by critical path length. A chain has parallelism 1; a fully
// parallel graph of k equal tasks has parallelism k. The paper's §6 sweeps
// this quantity to study the contention-aware lower bound LB1.
func (g *Graph) Parallelism() float64 {
	cp := g.CriticalPathLength()
	if cp == 0 {
		return 0
	}
	return float64(g.TotalWork()) / float64(cp)
}

// LevelWidths returns, per level, the number of tasks on that level. The
// maximum entry is the graph's width, a structural upper bound on how many
// processors the application can keep busy simultaneously.
func (g *Graph) LevelWidths() []int {
	c := g.mustAnalyze()
	w := make([]int, g.Depth())
	for id := range g.tasks {
		w[c.level[id]]++
	}
	return w
}

// Width returns the maximum number of tasks on any single level.
func (g *Graph) Width() int {
	max := 0
	for _, w := range g.LevelWidths() {
		if w > max {
			max = w
		}
	}
	return max
}

// DepthFirstOrder returns the fixed task order used by the DF branching
// rule B_DF: a depth-first traversal of the task graph starting from the
// input tasks in ID order, visiting successors in ID order. Every task
// appears exactly once, at its first visit. The order is NOT a topological
// order in general; the branching layer intersects it with readiness.
func (g *Graph) DepthFirstOrder() []TaskID {
	n := len(g.tasks)
	order := make([]TaskID, 0, n)
	seen := make([]bool, n)
	var dfs func(v TaskID)
	dfs = func(v TaskID) {
		if seen[v] {
			return
		}
		seen[v] = true
		order = append(order, v)
		succs := append([]TaskID(nil), g.succs[v]...)
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, s := range succs {
			dfs(s)
		}
	}
	for _, in := range g.Inputs() {
		dfs(in)
	}
	// Disconnected or degenerate graphs: visit any stragglers in ID order.
	for id := 0; id < n; id++ {
		if !seen[id] {
			dfs(TaskID(id))
		}
	}
	return order
}

// BreadthFirstOrder returns the fixed task order used by the BF1 branching
// rule B_BF1: tasks sorted by ascending level, ties broken by ID. This is a
// valid topological order because every arc increases level by at least 1.
func (g *Graph) BreadthFirstOrder() []TaskID {
	c := g.mustAnalyze()
	order := make([]TaskID, len(g.tasks))
	for id := range g.tasks {
		order[id] = TaskID(id)
	}
	sort.SliceStable(order, func(i, j int) bool {
		li, lj := c.level[order[i]], c.level[order[j]]
		if li != lj {
			return li < lj
		}
		return order[i] < order[j]
	})
	return order
}

// InDegree returns the number of direct predecessors of id.
func (g *Graph) InDegree(id TaskID) int { return len(g.preds[id]) }

// OutDegree returns the number of direct successors of id.
func (g *Graph) OutDegree(id TaskID) int { return len(g.succs[id]) }
