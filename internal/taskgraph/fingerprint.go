package taskgraph

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"
)

// Fingerprint is a relabeling-invariant 256-bit digest of a task graph:
// two graphs that are identical up to a relabeling of task IDs produce the
// same fingerprint, and any change to a scheduling-relevant parameter — a
// task's ⟨c, φ, d, T⟩ tuple, an arc, or a channel's ⟨m, a, d⟩ attributes —
// changes it in practice. Task names are deliberately excluded: they never
// affect scheduling.
//
// The digest is NOT a proof of isomorphism. It is built from 1-WL color
// refinement (see Graph.Fingerprint), and 1-WL is incomplete: structurally
// different graphs whose refinement histories coincide collide
// deterministically, not with cryptographic-hash probability. Use the
// fingerprint for grouping, binning and fast negative checks; anything that
// must never confuse two distinct instances (such as a result cache) has to
// compare exact canonical encodings — Canonical provides the canonical form
// whose codec bytes serve as that exact identity.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// IsZero reports the zero (never produced by Fingerprint) value.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// Fingerprint computes the canonical digest of the graph.
//
// The construction is a Weisfeiler–Leman style color refinement adapted to
// attributed DAGs. Every task starts with a signature hashing its scalar
// tuple and degrees; each refinement round rehashes a task's signature with
// the sorted multisets of its predecessor and successor signatures (each
// combined with the connecting channel's attributes). After depth(G) rounds
// a signature encodes the task's entire ancestor and descendant structure.
// The final digest hashes the sorted multiset of task signatures together
// with the sorted multiset of arc signatures — both multisets are invariant
// under any permutation of task IDs by construction.
//
// Tasks that still share a signature after full refinement occupy
// either genuinely symmetric positions or positions 1-WL cannot tell apart.
// The former is the common case on attributed scheduling DAGs; the latter
// is the known incompleteness of color refinement, which is why the digest
// must not be used as an exact identity (see the Fingerprint type docs).
func (g *Graph) Fingerprint() Fingerprint {
	n := len(g.tasks)
	sig := g.refinedSignatures()

	h := sha256.New()
	put(h, []byte("taskgraph/fingerprint/v1"))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	put(h, buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(len(g.list)))
	put(h, buf[:])
	writeSortedSigs(h, sig)

	arcs := make([]Fingerprint, 0, len(g.list))
	for _, c := range g.list {
		arcs = append(arcs, hashRecord('A',
			binary.LittleEndian.Uint64(sig[c.Src][:8]), binary.LittleEndian.Uint64(sig[c.Src][8:16]),
			binary.LittleEndian.Uint64(sig[c.Dst][:8]), binary.LittleEndian.Uint64(sig[c.Dst][8:16]),
			uint64(c.Size), uint64(c.Arrival), uint64(c.Deadline)))
	}
	writeSortedSigs(h, arcs)

	var out Fingerprint
	h.Sum(out[:0])
	return out
}

// refinedSignatures runs the WL color refinement to its fixpoint bound and
// returns the final per-task signatures. The signature of a task depends
// only on its attributes and its position in the graph, never on its ID, so
// the slice read as a multiset is relabeling-invariant. It is shared by
// Fingerprint (which hashes the multiset) and Canonical (which sorts tasks
// by it).
func (g *Graph) refinedSignatures() []Fingerprint {
	n := len(g.tasks)
	sig := make([]Fingerprint, n)
	for i := range g.tasks {
		t := &g.tasks[i]
		sig[i] = hashRecord('T',
			uint64(t.Exec), uint64(t.Phase), uint64(t.Deadline), uint64(t.Period),
			uint64(len(g.preds[i])), uint64(len(g.succs[i])))
	}

	for r := 0; r < g.refinementRounds(); r++ {
		next := make([]Fingerprint, n)
		var neigh []Fingerprint
		for i := range sig {
			h := sha256.New()
			put(h, []byte{'R'})
			put(h, sig[i][:])

			neigh = neigh[:0]
			for _, p := range g.preds[i] {
				neigh = append(neigh, g.arcSig('P', sig[p], p, TaskID(i)))
			}
			writeSortedSigs(h, neigh)

			neigh = neigh[:0]
			for _, s := range g.succs[i] {
				neigh = append(neigh, g.arcSig('S', sig[s], TaskID(i), s))
			}
			writeSortedSigs(h, neigh)

			h.Sum(next[i][:0])
		}
		sig = next
	}
	return sig
}

// Canonical returns a copy of the graph relabeled into canonical task
// order, together with the permutation that produced it (perm[old] = new).
// Tasks are ordered by their fully refined WL signatures, so for graphs
// whose refinement separates all non-symmetric tasks — the overwhelmingly
// common case on attributed scheduling DAGs — any two relabelings of the
// same instance canonicalize to byte-identical codec encodings. Those
// canonical bytes are an *exact* identity: unlike Fingerprint, two
// structurally different graphs can never share them.
//
// Ties between tasks that WL refinement cannot distinguish are broken by
// the original task ID. When such tied tasks are interchangeable
// (automorphic) the canonical bytes are unaffected; when they are distinct
// positions 1-WL merely fails to separate, two relabelings of one graph may
// canonicalize differently. That only costs a missed match for consumers
// keying on canonical bytes — never a false one.
func (g *Graph) Canonical() (*Graph, []TaskID, error) {
	n := g.NumTasks()
	sig := g.refinedSignatures()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if c := bytes.Compare(sig[order[a]][:], sig[order[b]][:]); c != 0 {
			return c < 0
		}
		return order[a] < order[b]
	})
	perm := make([]TaskID, n)
	for rank, old := range order {
		perm[old] = TaskID(rank)
	}
	canon, err := Relabel(g, perm)
	if err != nil {
		return nil, nil, err
	}
	return canon, perm, nil
}

// refinementRounds returns how many refinement iterations are needed for a
// signature to absorb the whole graph: the number of precedence levels for
// a DAG, or |N| as a safe canonical bound when the graph (not yet
// validated) contains a cycle.
func (g *Graph) refinementRounds() int {
	if _, err := g.TopoOrder(); err != nil {
		return len(g.tasks)
	}
	return g.Depth()
}

// arcSig combines a neighbour's signature with the attributes of the
// connecting channel, so refinement distinguishes neighbours reached over
// different message sizes or message windows.
func (g *Graph) arcSig(tag byte, neighbour Fingerprint, src, dst TaskID) Fingerprint {
	c, _ := g.Channel(src, dst)
	return hashRecord(tag,
		binary.LittleEndian.Uint64(neighbour[:8]), binary.LittleEndian.Uint64(neighbour[8:16]),
		binary.LittleEndian.Uint64(neighbour[16:24]), binary.LittleEndian.Uint64(neighbour[24:]),
		uint64(c.Size), uint64(c.Arrival), uint64(c.Deadline))
}

func hashRecord(tag byte, fields ...uint64) Fingerprint {
	h := sha256.New()
	put(h, []byte{tag})
	var buf [8]byte
	for _, f := range fields {
		binary.LittleEndian.PutUint64(buf[:], f)
		put(h, buf[:])
	}
	var out Fingerprint
	h.Sum(out[:0])
	return out
}

// put feeds b to the hash; hash writes are defined to never fail.
func put(h hash.Hash, b []byte) { _, _ = h.Write(b) }

// writeSortedSigs hashes a multiset of signatures order-independently by
// sorting a copy before feeding it to h.
func writeSortedSigs(h hash.Hash, sigs []Fingerprint) {
	sorted := append([]Fingerprint(nil), sigs...)
	sort.Slice(sorted, func(i, j int) bool {
		return bytes.Compare(sorted[i][:], sorted[j][:]) < 0
	})
	for i := range sorted {
		put(h, sorted[i][:])
	}
}

// Relabel returns a copy of the graph with task IDs permuted: old task i
// becomes new task perm[i], keeping every task parameter, arc and channel
// attribute. perm must be a bijection on [0, NumTasks). Relabel is the
// test oracle for Fingerprint invariance and a building block for
// canonicalizing stored instances.
func Relabel(g *Graph, perm []TaskID) (*Graph, error) {
	n := g.NumTasks()
	if len(perm) != n {
		return nil, fmt.Errorf("taskgraph: Relabel permutation has %d entries for %d tasks", len(perm), n)
	}
	inv := make([]TaskID, n)
	for i := range inv {
		inv[i] = NoTask
	}
	for oldID, newID := range perm {
		if newID < 0 || int(newID) >= n || inv[newID] != NoTask {
			return nil, fmt.Errorf("taskgraph: Relabel permutation is not a bijection at %d→%d", oldID, newID)
		}
		inv[newID] = TaskID(oldID)
	}
	out := New(n)
	for newID := 0; newID < n; newID++ {
		out.AddTask(g.tasks[inv[newID]]) // AddTask overwrites the ID field
	}
	for _, c := range g.list {
		if err := out.AddEdge(perm[c.Src], perm[c.Dst], c.Size); err != nil {
			return nil, err
		}
		ch, _ := out.ChannelPtr(perm[c.Src], perm[c.Dst])
		ch.Arrival, ch.Deadline = c.Arrival, c.Deadline
	}
	return out, nil
}
