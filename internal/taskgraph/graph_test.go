package taskgraph

import (
	"strings"
	"testing"
)

func TestAddTaskAssignsDenseIDs(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		id := g.AddTask(Task{Exec: 1, Deadline: 10})
		if id != TaskID(i) {
			t.Fatalf("AddTask #%d returned ID %d", i, id)
		}
		if g.Task(id).ID != id {
			t.Fatalf("stored task has ID %d, want %d", g.Task(id).ID, id)
		}
	}
	if g.NumTasks() != 3 {
		t.Fatalf("NumTasks = %d, want 3", g.NumTasks())
	}
}

func TestAddTaskOverwritesCallerID(t *testing.T) {
	g := New(1)
	id := g.AddTask(Task{ID: 99, Exec: 1, Deadline: 10})
	if id != 0 || g.Task(0).ID != 0 {
		t.Fatalf("caller-supplied ID not overwritten: got %d", g.Task(0).ID)
	}
}

func TestAddEdgeRejectsBadEndpoints(t *testing.T) {
	g := New(2)
	a := g.AddTask(Task{Exec: 1, Deadline: 10})
	b := g.AddTask(Task{Exec: 1, Deadline: 10})
	cases := []struct {
		src, dst TaskID
		size     Time
		name     string
	}{
		{a, 17, 0, "unknown dst"},
		{17, b, 0, "unknown src"},
		{-1, b, 0, "negative src"},
		{a, a, 0, "self loop"},
		{a, b, -5, "negative size"},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.src, c.dst, c.size); err == nil {
			t.Errorf("%s: AddEdge(%d,%d,%d) succeeded, want error", c.name, c.src, c.dst, c.size)
		}
	}
}

func TestAddEdgeRejectsDuplicates(t *testing.T) {
	g := New(2)
	a := g.AddTask(Task{Exec: 1, Deadline: 10})
	b := g.AddTask(Task{Exec: 1, Deadline: 10})
	if err := g.AddEdge(a, b, 3); err != nil {
		t.Fatalf("first AddEdge: %v", err)
	}
	if err := g.AddEdge(a, b, 3); err == nil {
		t.Fatal("duplicate AddEdge succeeded, want error")
	}
}

func TestChannelLookup(t *testing.T) {
	g := Diamond()
	c, ok := g.Channel(0, 1)
	if !ok || c.Src != 0 || c.Dst != 1 || c.Size != 1 {
		t.Fatalf("Channel(0,1) = %+v, %v", c, ok)
	}
	if _, ok := g.Channel(1, 0); ok {
		t.Fatal("Channel(1,0) exists; arcs must be directed")
	}
	if got := g.MessageSize(0, 3); got != 0 {
		t.Fatalf("MessageSize on missing arc = %d, want 0", got)
	}
}

func TestInputsOutputs(t *testing.T) {
	g := Diamond()
	if in := g.Inputs(); len(in) != 1 || in[0] != 0 {
		t.Fatalf("Inputs = %v, want [0]", in)
	}
	if out := g.Outputs(); len(out) != 1 || out[0] != 3 {
		t.Fatalf("Outputs = %v, want [3]", out)
	}
	ind := Independent(4, 5)
	if got := len(ind.Inputs()); got != 4 {
		t.Fatalf("Independent inputs = %d, want 4", got)
	}
	if got := len(ind.Outputs()); got != 4 {
		t.Fatalf("Independent outputs = %d, want 4", got)
	}
}

func TestTotalWork(t *testing.T) {
	if got := Diamond().TotalWork(); got != 12 {
		t.Fatalf("Diamond TotalWork = %d, want 12", got)
	}
	if got := Chain(5, 7, 0).TotalWork(); got != 35 {
		t.Fatalf("Chain TotalWork = %d, want 35", got)
	}
}

func TestTopoOrderValid(t *testing.T) {
	for name, g := range map[string]*Graph{
		"diamond": Diamond(),
		"chain":   Chain(8, 3, 1),
		"fork":    ForkJoin(5, 4, 2),
		"ladder":  LadderGraph(4, 2, 1),
		"indep":   Independent(6, 1),
	} {
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("%s: TopoOrder: %v", name, err)
		}
		if len(order) != g.NumTasks() {
			t.Fatalf("%s: order covers %d of %d tasks", name, len(order), g.NumTasks())
		}
		pos := make(map[TaskID]int, len(order))
		for i, id := range order {
			pos[id] = i
		}
		for _, c := range g.Channels() {
			if pos[c.Src] >= pos[c.Dst] {
				t.Fatalf("%s: arc %d→%d violates topological order", name, c.Src, c.Dst)
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New(3)
	a := g.AddTask(Task{Exec: 1, Deadline: 10})
	b := g.AddTask(Task{Exec: 1, Deadline: 10})
	c := g.AddTask(Task{Exec: 1, Deadline: 10})
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, a, 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("TopoOrder accepted a cyclic graph")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a cyclic graph")
	}
}

func TestLevelsAndDepth(t *testing.T) {
	g := Diamond()
	want := map[TaskID]int{0: 0, 1: 1, 2: 1, 3: 2}
	for id, lvl := range want {
		if got := g.Level(id); got != lvl {
			t.Errorf("Level(%d) = %d, want %d", id, got, lvl)
		}
	}
	if g.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", g.Depth())
	}
	if d := Chain(9, 1, 0).Depth(); d != 9 {
		t.Fatalf("chain depth = %d, want 9", d)
	}
	if d := New(0).Depth(); d != 0 {
		t.Fatalf("empty depth = %d, want 0", d)
	}
}

func TestLongestPaths(t *testing.T) {
	g := Diamond() // a(2) → b(3)/c(5) → d(2)
	cases := []struct {
		id       TaskID
		from, to Time
	}{
		{0, 2, 9}, // a: itself; a+c+d
		{1, 5, 5}, // a+b; b+d
		{2, 7, 7}, // a+c; c+d
		{3, 9, 2}, // a+c+d; itself
	}
	for _, c := range cases {
		if got := g.LongestFromInput(c.id); got != c.from {
			t.Errorf("LongestFromInput(%d) = %d, want %d", c.id, got, c.from)
		}
		if got := g.LongestToOutput(c.id); got != c.to {
			t.Errorf("LongestToOutput(%d) = %d, want %d", c.id, got, c.to)
		}
	}
	if cp := g.CriticalPathLength(); cp != 9 {
		t.Fatalf("CriticalPathLength = %d, want 9", cp)
	}
}

func TestParallelismAndWidth(t *testing.T) {
	chain := Chain(6, 10, 0)
	if p := chain.Parallelism(); p != 1.0 {
		t.Fatalf("chain parallelism = %v, want 1", p)
	}
	fj := ForkJoin(4, 10, 0)
	// work = 6*10 = 60, cp = 30 ⇒ parallelism 2.
	if p := fj.Parallelism(); p != 2.0 {
		t.Fatalf("forkjoin parallelism = %v, want 2", p)
	}
	if w := fj.Width(); w != 4 {
		t.Fatalf("forkjoin width = %d, want 4", w)
	}
	widths := fj.LevelWidths()
	if len(widths) != 3 || widths[0] != 1 || widths[1] != 4 || widths[2] != 1 {
		t.Fatalf("forkjoin level widths = %v", widths)
	}
}

func TestHasPath(t *testing.T) {
	g := Diamond()
	if !g.HasPath(0, 3) {
		t.Fatal("HasPath(a,d) = false")
	}
	if g.HasPath(3, 0) {
		t.Fatal("HasPath(d,a) = true; arcs are directed")
	}
	if g.HasPath(1, 2) {
		t.Fatal("HasPath(b,c) = true; siblings are unrelated")
	}
	if g.HasPath(0, 0) {
		t.Fatal("HasPath(a,a) = true; ≺ is irreflexive")
	}
}

func TestIsDirectPredecessor(t *testing.T) {
	g := New(3)
	a := g.AddTask(Task{Exec: 1, Deadline: 10})
	b := g.AddTask(Task{Exec: 1, Deadline: 10})
	c := g.AddTask(Task{Exec: 1, Deadline: 10})
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(a, c, 0) // transitive arc: a ≺ c but not a ≺· c
	if !g.IsDirectPredecessor(a, b) || !g.IsDirectPredecessor(b, c) {
		t.Fatal("covering arcs not recognized as direct")
	}
	if g.IsDirectPredecessor(a, c) {
		t.Fatal("transitive arc a→c misclassified as direct")
	}
	if g.IsDirectPredecessor(b, a) {
		t.Fatal("reverse direction misclassified as direct")
	}
}

func TestTransitiveReduction(t *testing.T) {
	g := New(3)
	a := g.AddTask(Task{Exec: 1, Deadline: 10})
	b := g.AddTask(Task{Exec: 1, Deadline: 10})
	c := g.AddTask(Task{Exec: 1, Deadline: 10})
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(a, c, 0)
	r := g.TransitiveReduction()
	if r.NumEdges() != 2 {
		t.Fatalf("reduction kept %d arcs, want 2", r.NumEdges())
	}
	if _, ok := r.Channel(a, c); ok {
		t.Fatal("transitive arc a→c survived the reduction")
	}
	// Reduction of an already-reduced graph is the identity.
	d := Diamond()
	if rd := d.TransitiveReduction(); rd.NumEdges() != d.NumEdges() {
		t.Fatalf("diamond reduction changed arc count: %d → %d", d.NumEdges(), rd.NumEdges())
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Diamond()
	c := g.Clone()
	c.TaskPtr(0).Exec = 999
	if err := c.AddEdge(1, 2, 4); err != nil {
		t.Fatalf("clone AddEdge: %v", err)
	}
	if g.Task(0).Exec == 999 {
		t.Fatal("mutating clone's task mutated the original")
	}
	if g.NumEdges() == c.NumEdges() {
		t.Fatal("mutating clone's arcs mutated the original")
	}
}

func TestCacheInvalidationOnMutation(t *testing.T) {
	g := Chain(3, 5, 0)
	if g.Depth() != 3 {
		t.Fatalf("depth = %d", g.Depth())
	}
	tail := g.AddTask(Task{Exec: 5, Deadline: 100})
	g.MustAddEdge(2, tail, 0)
	if g.Depth() != 4 {
		t.Fatalf("depth after mutation = %d, want 4 (stale cache?)", g.Depth())
	}
	if g.CriticalPathLength() != 20 {
		t.Fatalf("cp after mutation = %d, want 20", g.CriticalPathLength())
	}
}

func TestDepthFirstOrderProperties(t *testing.T) {
	g := LadderGraph(4, 2, 1)
	order := g.DepthFirstOrder()
	if len(order) != g.NumTasks() {
		t.Fatalf("DF order covers %d of %d tasks", len(order), g.NumTasks())
	}
	seen := map[TaskID]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("task %d appears twice in DF order", id)
		}
		seen[id] = true
	}
	// The first task must be an input task.
	if g.InDegree(order[0]) != 0 {
		t.Fatalf("DF order starts at non-input task %d", order[0])
	}
}

func TestDepthFirstOrderDivesBeforeSiblings(t *testing.T) {
	// a → b → d, a → c: DF from a must visit b's subtree (incl. d) before c.
	g := New(4)
	a := g.AddTask(Task{Exec: 1, Deadline: 10})
	b := g.AddTask(Task{Exec: 1, Deadline: 10})
	c := g.AddTask(Task{Exec: 1, Deadline: 10})
	d := g.AddTask(Task{Exec: 1, Deadline: 10})
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, d, 0)
	order := g.DepthFirstOrder()
	pos := map[TaskID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[a] < pos[b] && pos[b] < pos[d] && pos[d] < pos[c]) {
		t.Fatalf("DF order %v does not dive: want a,b,d,c", order)
	}
}

func TestBreadthFirstOrderIsLevelSorted(t *testing.T) {
	g := LadderGraph(5, 2, 1)
	order := g.BreadthFirstOrder()
	if len(order) != g.NumTasks() {
		t.Fatalf("BF order covers %d of %d tasks", len(order), g.NumTasks())
	}
	for i := 1; i < len(order); i++ {
		if g.Level(order[i-1]) > g.Level(order[i]) {
			t.Fatalf("BF order not level-sorted at %d: %v", i, order)
		}
	}
	// BF order must be a topological order.
	pos := map[TaskID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, c := range g.Channels() {
		if pos[c.Src] >= pos[c.Dst] {
			t.Fatalf("BF order violates precedence on arc %d→%d", c.Src, c.Dst)
		}
	}
}

func TestTaskValidate(t *testing.T) {
	good := Task{Exec: 5, Phase: 0, Deadline: 10, Period: 20}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	bad := []Task{
		{Exec: 0, Deadline: 10},
		{Exec: -3, Deadline: 10},
		{Exec: 5, Phase: -1, Deadline: 10},
		{Exec: 5, Deadline: 4},
		{Exec: 5, Deadline: 30, Period: 20},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad task #%d accepted: %+v", i, b)
		}
	}
}

func TestTaskInvocationArithmetic(t *testing.T) {
	tk := Task{Exec: 3, Phase: 10, Deadline: 8, Period: 25}
	if got := tk.ArrivalK(1); got != 10 {
		t.Fatalf("ArrivalK(1) = %d, want 10", got)
	}
	if got := tk.ArrivalK(4); got != 10+3*25 {
		t.Fatalf("ArrivalK(4) = %d, want 85", got)
	}
	if got := tk.AbsDeadlineK(4); got != 93 {
		t.Fatalf("AbsDeadlineK(4) = %d, want 93", got)
	}
	if got := tk.WindowLength(); got != 8 {
		t.Fatalf("WindowLength = %d, want 8", got)
	}
}

func TestStringers(t *testing.T) {
	g := Diamond()
	if s := g.String(); !strings.Contains(s, "n=4") {
		t.Fatalf("Graph.String = %q", s)
	}
	if s := g.Task(0).String(); !strings.Contains(s, "c=2") {
		t.Fatalf("Task.String = %q", s)
	}
	ch, _ := g.Channel(0, 1)
	if s := ch.String(); !strings.Contains(s, "0→1") {
		t.Fatalf("Channel.String = %q", s)
	}
}

func TestMinMaxHelpers(t *testing.T) {
	if MaxTime(3, 7) != 7 || MaxTime(7, 3) != 7 {
		t.Fatal("MaxTime broken")
	}
	if MinTimeOf(3, 7) != 3 || MinTimeOf(7, 3) != 3 {
		t.Fatal("MinTimeOf broken")
	}
	if Infinity+Infinity < Infinity {
		t.Fatal("Infinity arithmetic overflows on one addition")
	}
}
