package taskgraph

// This file computes the graph's TRUE parallelism ceiling: the maximum
// antichain — the largest set of pairwise-incomparable tasks under ≺. No
// schedule can run more than MaxAntichain tasks concurrently even on
// unlimited processors, so the value calibrates processor counts the way
// the paper's §6 parallelism sweep does structurally. (Width() reports the
// cheaper per-level count, which is only a lower bound on the antichain.)
//
// By Dilworth's theorem the maximum antichain equals the minimum number of
// chains covering the DAG's COMPARABILITY relation, computed as
// n − maxMatching on the bipartite reachability graph (Fulkerson's
// construction: left copy u — right copy v iff u ≺ v). The matching is
// Hopcroft–Karp, O(E·√V) over the transitive closure.

// MaxAntichain returns the size of the largest antichain. Panics on cyclic
// graphs (as the other analyses do).
func (g *Graph) MaxAntichain() int {
	n := g.NumTasks()
	if n == 0 {
		return 0
	}
	reach := g.closure()

	// Adjacency of the bipartite graph: left u → every v with u ≺ v.
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if reach[u][v] {
				adj[u] = append(adj[u], int32(v))
			}
		}
	}
	matching := hopcroftKarp(n, adj)
	// Minimum chain cover of the comparability order = n − matching;
	// Dilworth: the maximum antichain has the same size.
	return n - matching
}

// AntichainAt returns one maximum antichain (task IDs in ascending order).
// It derives the vertex cover from the final matching (König) and returns
// the complement, restricted per Dilworth's correspondence.
func (g *Graph) AntichainAt() []TaskID {
	n := g.NumTasks()
	if n == 0 {
		return nil
	}
	reach := g.closure()
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if reach[u][v] {
				adj[u] = append(adj[u], int32(v))
			}
		}
	}
	matchL, matchR := hopcroftKarpWithMatches(n, adj)

	// König: alternating BFS from unmatched left vertices.
	visL := make([]bool, n)
	visR := make([]bool, n)
	queue := make([]int32, 0, n)
	for u := 0; u < n; u++ {
		if matchL[u] < 0 {
			visL[u] = true
			queue = append(queue, int32(u))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if visR[v] {
				continue
			}
			visR[v] = true
			if w := matchR[v]; w >= 0 && !visL[w] {
				visL[w] = true
				queue = append(queue, w)
			}
		}
	}
	// Vertex cover = (left not visited) ∪ (right visited). A task belongs
	// to the maximum antichain iff NEITHER of its copies is in the cover:
	// visL[u] && !visR[u].
	var out []TaskID
	for u := 0; u < n; u++ {
		if visL[u] && !visR[u] {
			out = append(out, TaskID(u))
		}
	}
	return out
}

// closure computes the boolean transitive closure of ≺ (excluding the
// diagonal) in topological order.
func (g *Graph) closure() [][]bool {
	n := g.NumTasks()
	order := g.mustAnalyze().topo
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	for i := n - 1; i >= 0; i-- {
		u := order[i]
		for _, s := range g.succs[u] {
			reach[u][s] = true
			for v := 0; v < n; v++ {
				if reach[s][v] {
					reach[u][v] = true
				}
			}
		}
	}
	return reach
}

// hopcroftKarp returns the size of a maximum bipartite matching.
func hopcroftKarp(n int, adj [][]int32) int {
	matchL, _ := hopcroftKarpWithMatches(n, adj)
	size := 0
	for _, v := range matchL {
		if v >= 0 {
			size++
		}
	}
	return size
}

// hopcroftKarpWithMatches returns the matching arrays (−1 = unmatched).
func hopcroftKarpWithMatches(n int, adj [][]int32) (matchL, matchR []int32) {
	const inf = int32(1) << 30
	matchL = make([]int32, n)
	matchR = make([]int32, n)
	dist := make([]int32, n)
	for i := range matchL {
		matchL[i], matchR[i] = -1, -1
	}
	queue := make([]int32, 0, n)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < n; u++ {
			if matchL[u] < 0 {
				dist[u] = 0
				queue = append(queue, int32(u))
			} else {
				dist[u] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range adj[u] {
				w := matchR[v]
				if w < 0 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int32) bool
	dfs = func(u int32) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w < 0 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < n; u++ {
			if matchL[u] < 0 {
				dfs(int32(u))
			}
		}
	}
	return matchL, matchR
}
