package taskgraph

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// graphJSON is the stable on-disk representation of a Graph. Tasks appear
// in ID order and channels in (src, dst) order, so the encoding of a given
// graph is byte-for-byte reproducible.
type graphJSON struct {
	Tasks    []Task    `json:"tasks"`
	Channels []Channel `json:"channels"`
}

// MarshalJSON encodes the graph as {"tasks": [...], "channels": [...]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(graphJSON{Tasks: g.tasks, Channels: g.SortedArcs()})
}

// UnmarshalJSON decodes a graph previously encoded with MarshalJSON. The
// decoded graph is validated (task parameters and acyclicity) before being
// installed, so a *Graph never silently holds a malformed structure.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var raw graphJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("taskgraph: decode: %w", err)
	}
	ng := New(len(raw.Tasks))
	for i, t := range raw.Tasks {
		if t.ID != TaskID(i) {
			return fmt.Errorf("taskgraph: decode: task %d stored with ID %d (IDs must be dense and ordered)", i, t.ID)
		}
		ng.AddTask(t)
	}
	for _, c := range raw.Channels {
		if err := ng.AddEdge(c.Src, c.Dst, c.Size); err != nil {
			return fmt.Errorf("taskgraph: decode: %w", err)
		}
		ch, _ := ng.ChannelPtr(c.Src, c.Dst)
		ch.Arrival, ch.Deadline = c.Arrival, c.Deadline
	}
	if err := ng.Validate(); err != nil {
		return fmt.Errorf("taskgraph: decode: %w", err)
	}
	*g = *ng
	return nil
}

// WriteJSON writes the indented JSON encoding of the graph to w.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON decodes a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}

// LoadFile reads a graph from the named file, selecting the codec by
// extension: ".stg" for the text format, JSON otherwise.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //bbvet:ignore errcheck (read-only descriptor; nothing to recover from)
	if strings.HasSuffix(path, ".stg") {
		return ReadSTG(f)
	}
	return ReadJSON(f)
}

// SaveFile writes the graph to the named file, selecting the codec by
// extension: ".stg" for the text format, JSON otherwise.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := g.WriteJSON
	if strings.HasSuffix(path, ".stg") {
		write = g.WriteSTG
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// DOT renders the graph in Graphviz DOT syntax. Node labels carry the task
// name (or τi) with its ⟨c, a, D⟩ triple; edge labels carry message sizes.
// The output is deterministic.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph taskgraph {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=box];\n")
	for _, t := range g.tasks {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("t%d", t.ID)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\nc=%d a=%d D=%d\"];\n",
			t.ID, name, t.Exec, t.Arrival(), t.AbsDeadline())
	}
	for _, c := range g.SortedArcs() {
		if c.Size != 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%d\"];\n", c.Src, c.Dst, c.Size)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", c.Src, c.Dst)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
