package taskgraph

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for name, g := range map[string]*Graph{
		"diamond": Diamond(),
		"ladder":  LadderGraph(3, 4, 2),
		"indep":   Independent(5, 7),
	} {
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: round trip changed shape: %v vs %v", name, &back, g)
		}
		for id := 0; id < g.NumTasks(); id++ {
			if back.Task(TaskID(id)) != g.Task(TaskID(id)) {
				t.Fatalf("%s: task %d changed: %+v vs %+v", name, id, back.Task(TaskID(id)), g.Task(TaskID(id)))
			}
		}
		for _, c := range g.Channels() {
			bc, ok := back.Channel(c.Src, c.Dst)
			if !ok || bc != c {
				t.Fatalf("%s: channel %v changed to %v (ok=%v)", name, c, bc, ok)
			}
		}
	}
}

func TestJSONDeterministic(t *testing.T) {
	g := LadderGraph(3, 4, 2)
	a, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("JSON encoding is not deterministic across clones")
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":       `{"tasks": 17}`,
		"sparse ids":    `{"tasks":[{"id":5,"exec":1,"deadline":10}],"channels":[]}`,
		"bad edge":      `{"tasks":[{"id":0,"exec":1,"deadline":10}],"channels":[{"src":0,"dst":9,"size":1}]}`,
		"cycle":         `{"tasks":[{"id":0,"exec":1,"deadline":10},{"id":1,"exec":1,"deadline":10}],"channels":[{"src":0,"dst":1,"size":1},{"src":1,"dst":0,"size":1}]}`,
		"zero exec":     `{"tasks":[{"id":0,"exec":0,"deadline":10}],"channels":[]}`,
		"tight window":  `{"tasks":[{"id":0,"exec":9,"deadline":3}],"channels":[]}`,
		"self loop":     `{"tasks":[{"id":0,"exec":1,"deadline":10}],"channels":[{"src":0,"dst":0,"size":1}]}`,
		"dup edge":      `{"tasks":[{"id":0,"exec":1,"deadline":10},{"id":1,"exec":1,"deadline":10}],"channels":[{"src":0,"dst":1,"size":1},{"src":0,"dst":1,"size":2}]}`,
		"negative size": `{"tasks":[{"id":0,"exec":1,"deadline":10},{"id":1,"exec":1,"deadline":10}],"channels":[{"src":0,"dst":1,"size":-4}]}`,
	}
	for name, doc := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(doc), &g); err == nil {
			t.Errorf("%s: malformed document accepted", name)
		}
	}
}

func TestJSONPreservesChannelWindows(t *testing.T) {
	g := Diamond()
	ch, _ := g.ChannelPtr(0, 1)
	ch.Arrival, ch.Deadline = 7, 13
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	bc, _ := back.Channel(0, 1)
	if bc.Arrival != 7 || bc.Deadline != 13 {
		t.Fatalf("channel window lost: %+v", bc)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.json")
	g := ForkJoin(3, 6, 2)
	if err := g.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("file round trip changed shape")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("LoadFile on missing file succeeded")
	}
}

func TestDOTOutput(t *testing.T) {
	g := Diamond()
	dot := g.DOT()
	for _, want := range []string{"digraph", "n0 -> n1", "n2 -> n3", "c=5"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if g.DOT() != dot {
		t.Fatal("DOT output is not deterministic")
	}
	// Zero-size arcs are rendered without labels.
	c := Chain(2, 3, 0)
	if strings.Contains(c.DOT(), "label=\"0\"") {
		t.Fatal("zero-size arc rendered with a label")
	}
}
