package taskgraph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements a human-writable text format for task graphs, in
// the spirit of the Standard Task Graph sets used by the scheduling
// community — line-oriented, diff-friendly, hand-editable:
//
//	# full-line and trailing comments with '#'
//	task <name> exec=<int> [phase=<int>] [deadline=<int>] [period=<int>]
//	edge <src> -> <dst> [size=<int>]
//
// Task names are unique identifiers; edges reference names. A task without
// an explicit deadline gets a window of exec (the tightest valid one) —
// callers normally run deadline.Assign afterwards anyway. WriteSTG emits a
// canonical form (tasks in ID order, edges sorted) that ReadSTG parses
// back to an identical graph.

// ReadSTG parses the text format. Errors carry 1-based line numbers.
func ReadSTG(r io.Reader) (*Graph, error) {
	g := New(16)
	names := map[string]TaskID{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "task":
			if len(fields) < 2 {
				return nil, fmt.Errorf("stg:%d: task without a name", lineNo)
			}
			name := fields[1]
			if _, dup := names[name]; dup {
				return nil, fmt.Errorf("stg:%d: duplicate task %q", lineNo, name)
			}
			t := Task{Name: name}
			seen := map[string]bool{}
			for _, kv := range fields[2:] {
				key, val, err := splitKV(kv)
				if err != nil {
					return nil, fmt.Errorf("stg:%d: %v", lineNo, err)
				}
				if seen[key] {
					return nil, fmt.Errorf("stg:%d: duplicate attribute %q", lineNo, key)
				}
				seen[key] = true
				switch key {
				case "exec":
					t.Exec = val
				case "phase":
					t.Phase = val
				case "deadline":
					t.Deadline = val
				case "period":
					t.Period = val
				default:
					return nil, fmt.Errorf("stg:%d: unknown task attribute %q", lineNo, key)
				}
			}
			if t.Deadline == 0 {
				t.Deadline = t.Exec
			}
			if err := t.Validate(); err != nil {
				return nil, fmt.Errorf("stg:%d: %v", lineNo, err)
			}
			names[name] = g.AddTask(t)

		case "edge":
			// edge A -> B [size=N]
			if len(fields) < 4 || fields[2] != "->" {
				return nil, fmt.Errorf("stg:%d: edge syntax is \"edge SRC -> DST [size=N]\"", lineNo)
			}
			src, ok := names[fields[1]]
			if !ok {
				return nil, fmt.Errorf("stg:%d: unknown task %q", lineNo, fields[1])
			}
			dst, ok := names[fields[3]]
			if !ok {
				return nil, fmt.Errorf("stg:%d: unknown task %q", lineNo, fields[3])
			}
			var size Time
			for _, kv := range fields[4:] {
				key, val, err := splitKV(kv)
				if err != nil {
					return nil, fmt.Errorf("stg:%d: %v", lineNo, err)
				}
				if key != "size" {
					return nil, fmt.Errorf("stg:%d: unknown edge attribute %q", lineNo, key)
				}
				size = val
			}
			if err := g.AddEdge(src, dst, size); err != nil {
				return nil, fmt.Errorf("stg:%d: %v", lineNo, err)
			}

		default:
			return nil, fmt.Errorf("stg:%d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("stg: %v", err)
	}
	return g, nil
}

func splitKV(s string) (string, Time, error) {
	key, val, ok := strings.Cut(s, "=")
	if !ok {
		return "", 0, fmt.Errorf("attribute %q is not key=value", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("attribute %q: %v", s, err)
	}
	return key, Time(v), nil
}

// WriteSTG emits the canonical text form. Unnamed tasks are written with
// generated names ("t<ID>") that round-trip to the same structure.
func (g *Graph) WriteSTG(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d tasks, %d edges\n", g.NumTasks(), g.NumEdges())
	// Unique names: fall back to t<ID>, disambiguate duplicates.
	names := make([]string, g.NumTasks())
	used := map[string]bool{}
	for _, t := range g.Tasks() {
		name := t.Name
		if name == "" || strings.ContainsAny(name, " \t#") || used[name] {
			name = fmt.Sprintf("t%d", t.ID)
		}
		used[name] = true
		names[t.ID] = name
	}
	for _, t := range g.Tasks() {
		fmt.Fprintf(bw, "task %s exec=%d", names[t.ID], t.Exec)
		if t.Phase != 0 {
			fmt.Fprintf(bw, " phase=%d", t.Phase)
		}
		fmt.Fprintf(bw, " deadline=%d", t.Deadline)
		if t.Period != 0 {
			fmt.Fprintf(bw, " period=%d", t.Period)
		}
		fmt.Fprintln(bw)
	}
	arcs := g.SortedArcs()
	sort.SliceStable(arcs, func(i, j int) bool {
		if arcs[i].Src != arcs[j].Src {
			return arcs[i].Src < arcs[j].Src
		}
		return arcs[i].Dst < arcs[j].Dst
	})
	for _, c := range arcs {
		fmt.Fprintf(bw, "edge %s -> %s", names[c.Src], names[c.Dst])
		if c.Size != 0 {
			fmt.Fprintf(bw, " size=%d", c.Size)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
