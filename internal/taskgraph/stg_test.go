package taskgraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadSTGBasic(t *testing.T) {
	const doc = `
# a three-stage pipeline
task sense exec=4 deadline=20
task plan  exec=7 deadline=30   # trailing comment
task act   exec=3 deadline=40 phase=5

edge sense -> plan size=2
edge plan -> act
`
	g, err := ReadSTG(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 3 || g.NumEdges() != 2 {
		t.Fatalf("shape %d/%d", g.NumTasks(), g.NumEdges())
	}
	plan := g.Task(1)
	if plan.Name != "plan" || plan.Exec != 7 || plan.Deadline != 30 {
		t.Fatalf("plan = %+v", plan)
	}
	if g.Task(2).Phase != 5 {
		t.Fatalf("phase lost: %+v", g.Task(2))
	}
	if got := g.MessageSize(0, 1); got != 2 {
		t.Fatalf("edge size %d", got)
	}
	if got := g.MessageSize(1, 2); got != 0 {
		t.Fatalf("default edge size %d", got)
	}
}

func TestReadSTGDefaultsDeadlineToExec(t *testing.T) {
	g, err := ReadSTG(strings.NewReader("task a exec=9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Task(0).Deadline != 9 {
		t.Fatalf("default deadline %d, want exec 9", g.Task(0).Deadline)
	}
}

func TestReadSTGErrors(t *testing.T) {
	cases := map[string]string{
		"no name":        "task\n",
		"dup task":       "task a exec=1\ntask a exec=1\n",
		"bad attr":       "task a exec=1 color=blue\n",
		"dup attr":       "task a exec=1 exec=2\n",
		"not kv":         "task a exec\n",
		"bad int":        "task a exec=abc\n",
		"invalid task":   "task a exec=0\n",
		"window short":   "task a exec=5 deadline=3\n",
		"bad edge":       "task a exec=1\ntask b exec=1\nedge a b\n",
		"unknown src":    "task b exec=1\nedge a -> b\n",
		"unknown dst":    "task a exec=1\nedge a -> b\n",
		"edge attr":      "task a exec=1\ntask b exec=1\nedge a -> b weight=3\n",
		"self loop":      "task a exec=1\nedge a -> a\n",
		"dup edge":       "task a exec=1\ntask b exec=1\nedge a -> b\nedge a -> b\n",
		"cycle":          "task a exec=1\ntask b exec=1\nedge a -> b\nedge b -> a\n",
		"unknown direct": "node a exec=1\n",
	}
	for name, doc := range cases {
		if _, err := ReadSTG(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted %q", name, doc)
		}
	}
}

func TestReadSTGErrorsCarryLineNumbers(t *testing.T) {
	_, err := ReadSTG(strings.NewReader("task a exec=1\n\ntask b exec=0\n"))
	if err == nil || !strings.Contains(err.Error(), "stg:3") {
		t.Fatalf("want line 3 in error, got %v", err)
	}
}

func TestSTGRoundTrip(t *testing.T) {
	for name, g := range map[string]*Graph{
		"diamond": Diamond(),
		"ladder":  LadderGraph(3, 4, 2),
		"indep":   Independent(4, 6),
	} {
		var buf bytes.Buffer
		if err := g.WriteSTG(&buf); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := ReadSTG(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v\n%s", name, err, buf.String())
		}
		if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: shape changed", name)
		}
		for id := 0; id < g.NumTasks(); id++ {
			a, b := g.Task(TaskID(id)), back.Task(TaskID(id))
			if a.Exec != b.Exec || a.Phase != b.Phase || a.Deadline != b.Deadline || a.Period != b.Period {
				t.Fatalf("%s: task %d changed: %+v vs %+v", name, id, a, b)
			}
		}
		for _, c := range g.Channels() {
			bc, ok := back.Channel(c.Src, c.Dst)
			if !ok || bc.Size != c.Size {
				t.Fatalf("%s: edge %v changed", name, c)
			}
		}
		// Canonical: writing again yields identical bytes.
		var buf2 bytes.Buffer
		if err := back.WriteSTG(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: not canonical:\n%s\nvs\n%s", name, buf.String(), buf2.String())
		}
	}
}

func TestWriteSTGSanitizesNames(t *testing.T) {
	g := New(3)
	g.AddTask(Task{Name: "has space", Exec: 1, Deadline: 5})
	g.AddTask(Task{Name: "", Exec: 1, Deadline: 5})
	g.AddTask(Task{Name: "has space", Exec: 1, Deadline: 5}) // duplicate name
	var buf bytes.Buffer
	if err := g.WriteSTG(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSTG(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("sanitized output unparseable: %v\n%s", err, buf.String())
	}
	if back.NumTasks() != 3 {
		t.Fatal("task lost in sanitization")
	}
}

func TestSTGPeriodicRoundTrip(t *testing.T) {
	g := New(1)
	g.AddTask(Task{Name: "p", Exec: 2, Phase: 1, Deadline: 8, Period: 10})
	var buf bytes.Buffer
	if err := g.WriteSTG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "period=10") || !strings.Contains(buf.String(), "phase=1") {
		t.Fatalf("periodic attributes missing:\n%s", buf.String())
	}
	back, err := ReadSTG(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Task(0) != (Task{ID: 0, Name: "p", Exec: 2, Phase: 1, Deadline: 8, Period: 10}) {
		t.Fatalf("round trip changed task: %+v", back.Task(0))
	}
}

func TestSaveLoadFileByExtension(t *testing.T) {
	dir := t.TempDir()
	g := Diamond()
	for _, name := range []string{"g.json", "g.stg"} {
		path := dir + "/" + name
		if err := g.SaveFile(path); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: round trip changed shape", name)
		}
	}
}
