package parabb_test

import (
	"fmt"
	"time"

	parabb "repro"
)

// ExampleSolve schedules a three-stage pipeline on two processors and
// proves the optimal maximum lateness.
func ExampleSolve() {
	g := parabb.NewGraph(3)
	a := g.AddTask(parabb.Task{Name: "sense", Exec: 4, Deadline: 20})
	b := g.AddTask(parabb.Task{Name: "plan", Exec: 7, Deadline: 30})
	c := g.AddTask(parabb.Task{Name: "act", Exec: 3, Deadline: 40})
	g.MustAddEdge(a, b, 2)
	g.MustAddEdge(b, c, 1)

	res, err := parabb.Solve(g, parabb.NewPlatform(2), parabb.Params{})
	if err != nil {
		panic(err)
	}
	fmt.Println("Lmax:", res.Cost)
	fmt.Println("optimal:", res.Optimal)
	// Output:
	// Lmax: -16
	// optimal: true
}

// ExampleSolve_parametrized shows how the Kohler–Steiglitz knobs map onto
// Params: an approximate depth-first search with a 10% guarantee budget.
func ExampleSolve_parametrized() {
	g := parabb.NewGraph(2)
	a := g.AddTask(parabb.Task{Name: "u", Exec: 5, Deadline: 10})
	b := g.AddTask(parabb.Task{Name: "v", Exec: 5, Deadline: 20})
	g.MustAddEdge(a, b, 1)

	res, err := parabb.Solve(g, parabb.NewPlatform(2), parabb.Params{
		Selection: parabb.SelectLIFO,
		Branching: parabb.BranchDF,
		Bound:     parabb.BoundLB1,
		BR:        0.10,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("Lmax:", res.Cost)
	fmt.Println("proven optimal:", res.Optimal) // DF is approximate
	// Output:
	// Lmax: -5
	// proven optimal: false
}

// ExampleEDF contrasts the greedy baseline with the exact solver.
func ExampleEDF() {
	g := parabb.NewGraph(2)
	g.AddTask(parabb.Task{Name: "tight", Exec: 5, Deadline: 20})
	g.AddTask(parabb.Task{Name: "loose", Exec: 5, Deadline: 30})

	_, lmax, err := parabb.EDF(g, parabb.NewPlatform(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("EDF Lmax:", lmax)
	// Output:
	// EDF Lmax: -15
}

// ExampleRandomWorkload draws one paper-style workload (§4.1 parameters,
// §4.2 deadline slicing) deterministically from a seed.
func ExampleRandomWorkload() {
	g, err := parabb.RandomWorkload(parabb.DefaultWorkload(), 7)
	if err != nil {
		panic(err)
	}
	fmt.Println("tasks in [12,16]:", g.NumTasks() >= 12 && g.NumTasks() <= 16)
	fmt.Println("depth in [8,12]:", g.Depth() >= 8 && g.Depth() <= 12)
	// Output:
	// tasks in [12,16]: true
	// depth in [8,12]: true
}

// ExampleUnroll expands a periodic task over its hyperperiod.
func ExampleUnroll() {
	g := parabb.NewGraph(2)
	g.AddTask(parabb.Task{Name: "fast", Exec: 2, Deadline: 9, Period: 10})
	g.AddTask(parabb.Task{Name: "slow", Exec: 3, Deadline: 14, Period: 15})

	ex, err := parabb.Unroll(g)
	if err != nil {
		panic(err)
	}
	fmt.Println("hyperperiod:", ex.Hyperperiod)
	fmt.Println("invocations:", ex.Graph.NumTasks())
	// Output:
	// hyperperiod: 30
	// invocations: 5
}

// ExampleGanttText renders a two-processor schedule for a terminal.
func ExampleGanttText() {
	g := parabb.NewGraph(2)
	g.AddTask(parabb.Task{Name: "A", Exec: 4, Deadline: 10})
	g.AddTask(parabb.Task{Name: "B", Exec: 4, Deadline: 10})
	res, err := parabb.Solve(g, parabb.NewPlatform(2), parabb.Params{})
	if err != nil {
		panic(err)
	}
	fmt.Print(parabb.GanttText(res.Schedule, 24))
	// Output:
	// time 0..4, 2 processors, Lmax=-6
	// p0  |[A=====================]|
	// p1  |[B=====================]|
}

// ExampleAnalyze certifies infeasibility without running any search.
func ExampleAnalyze() {
	g := parabb.NewGraph(3)
	for i := 0; i < 3; i++ {
		g.AddTask(parabb.Task{Name: string(rune('a' + i)), Exec: 10, Deadline: 12})
	}
	rep, err := parabb.Analyze(g, parabb.NewPlatform(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("certified lower bound on Lmax:", rep.Lower)
	fmt.Println("provably infeasible:", rep.Infeasible())
	// Output:
	// certified lower bound on Lmax: 18
	// provably infeasible: true
}

// ExampleSolveIDA shows the memory-frugal exact regime.
func ExampleSolveIDA() {
	g := parabb.NewGraph(2)
	a := g.AddTask(parabb.Task{Name: "u", Exec: 5, Deadline: 10})
	b := g.AddTask(parabb.Task{Name: "v", Exec: 5, Deadline: 20})
	g.MustAddEdge(a, b, 1)
	res, err := parabb.SolveIDA(g, parabb.NewPlatform(2), parabb.Params{})
	if err != nil {
		panic(err)
	}
	fmt.Println("Lmax:", res.Cost, "optimal:", res.Optimal)
	// Output:
	// Lmax: -5 optimal: true
}

// ExampleSolveAnytime runs the full bounds→greedy→improve→exact pipeline.
func ExampleSolveAnytime() {
	g := parabb.NewGraph(3)
	a := g.AddTask(parabb.Task{Name: "a", Exec: 4, Deadline: 8})
	b := g.AddTask(parabb.Task{Name: "b", Exec: 4, Deadline: 16})
	c := g.AddTask(parabb.Task{Name: "c", Exec: 4, Deadline: 24})
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 1)
	res, err := parabb.SolveAnytime(g, parabb.NewPlatform(2), parabb.PortfolioOptions{
		Budget: time.Second,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("Lmax:", res.Cost, "proven optimal:", res.Optimal)
	// Output:
	// Lmax: -4 proven optimal: true
}
