package parabb_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	parabb "repro"
)

// buildPipeline returns the three-stage pipeline from the package docs.
func buildPipeline(t *testing.T) *parabb.Graph {
	t.Helper()
	g := parabb.NewGraph(3)
	a := g.AddTask(parabb.Task{Name: "sense", Exec: 4, Deadline: 20})
	b := g.AddTask(parabb.Task{Name: "plan", Exec: 7, Deadline: 30})
	c := g.AddTask(parabb.Task{Name: "act", Exec: 3, Deadline: 40})
	g.MustAddEdge(a, b, 2)
	g.MustAddEdge(b, c, 1)
	return g
}

func TestFacadeQuickStartFlow(t *testing.T) {
	g := buildPipeline(t)
	res, err := parabb.Solve(g, parabb.NewPlatform(2), parabb.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Schedule == nil {
		t.Fatalf("unexpected result: optimal=%v", res.Optimal)
	}
	// Chain of 14 work units, all on one processor, windows 20/30/40:
	// finishes 4, 11, 14 → latenesses −16, −19, −26 → Lmax −16.
	if res.Cost != -16 {
		t.Fatalf("cost %d, want -16\n%s", res.Cost, res.Schedule)
	}
	if out := parabb.GanttText(res.Schedule, 60); !strings.Contains(out, "sense") {
		t.Fatalf("gantt missing task name:\n%s", out)
	}
	if svg := parabb.GanttSVG(res.Schedule); !strings.Contains(svg, "<svg") {
		t.Fatal("SVG rendering broken")
	}
	if _, err := parabb.GanttJSON(res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeEDFAndParallelAgree(t *testing.T) {
	g, err := parabb.RandomWorkload(parabb.DefaultWorkload(), 7)
	if err != nil {
		t.Fatal(err)
	}
	plat := parabb.NewPlatform(3)

	_, edfCost, err := parabb.EDF(g, plat)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := parabb.Solve(g, plat, parabb.Params{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := parabb.SolveParallel(g, plat, parabb.ParallelParams{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cost > edfCost {
		t.Fatalf("optimal %d worse than EDF %d", seq.Cost, edfCost)
	}
	if par.Cost != seq.Cost {
		t.Fatalf("parallel %d != sequential %d", par.Cost, seq.Cost)
	}
}

func TestFacadeWorkloadPipeline(t *testing.T) {
	wp := parabb.DefaultWorkload()
	g, err := parabb.RandomWorkload(wp, 99)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() < wp.NMin || g.NumTasks() > wp.NMax {
		t.Fatalf("workload size %d outside spec", g.NumTasks())
	}
	// Round-trip through the codec facade.
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := parabb.LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != g.NumTasks() {
		t.Fatal("codec round trip changed the graph")
	}
}

func TestFacadePeriodic(t *testing.T) {
	g := parabb.NewGraph(2)
	a := g.AddTask(parabb.Task{Name: "s", Exec: 2, Deadline: 9, Period: 10})
	b := g.AddTask(parabb.Task{Name: "f", Exec: 3, Deadline: 10, Period: 10})
	g.MustAddEdge(a, b, 1)
	ex, err := parabb.Unroll(g)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Hyperperiod != 10 || ex.Graph.NumTasks() != 2 {
		t.Fatalf("expansion wrong: H=%d n=%d", ex.Hyperperiod, ex.Graph.NumTasks())
	}
	res, err := parabb.Solve(ex.Graph, parabb.NewPlatform(1), parabb.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 0 {
		t.Fatalf("trivially schedulable system got Lmax=%d", res.Cost)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := parabb.Experiments()
	if len(ids) != 11 {
		t.Fatalf("expected 11 experiments, got %v", ids)
	}
	cfg := parabb.QuickExperiment()
	cfg.Runs = 2
	cfg.Adaptive = false
	cfg.Procs = []int{2}
	cfg.Workload.NMin, cfg.Workload.NMax = 6, 7
	cfg.Workload.DepthMin, cfg.Workload.DepthMax = 3, 4
	fig, err := parabb.RunExperiment("fig3a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig3a" || len(fig.Series) == 0 {
		t.Fatal("experiment produced no series")
	}
	if _, err := parabb.RunExperiment("bogus", cfg); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeListScheduleAndImprove(t *testing.T) {
	g, err := parabb.RandomWorkload(parabb.DefaultWorkload(), 321)
	if err != nil {
		t.Fatal(err)
	}
	plat := parabb.NewPlatform(2)
	opt, err := parabb.Solve(g, plat, parabb.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []parabb.ListPolicy{parabb.ListHLFET, parabb.ListLeastSlack, parabb.ListEDF} {
		s, lmax, err := parabb.ListSchedule(g, plat, pol)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if lmax < opt.Cost {
			t.Fatalf("%v beat the optimum", pol)
		}
		imp, err := parabb.Improve(s, parabb.ImproveOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if imp.Cost > lmax || imp.Cost < opt.Cost {
			t.Fatalf("%v improve out of range: %d (greedy %d, opt %d)", pol, imp.Cost, lmax, opt.Cost)
		}
	}
}

func TestFacadeSimulateAndPreemptive(t *testing.T) {
	g, err := parabb.RandomWorkload(parabb.DefaultWorkload(), 654)
	if err != nil {
		t.Fatal(err)
	}
	plat := parabb.NewPlatform(2)
	res, err := parabb.Solve(g, plat, parabb.Params{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := parabb.Simulate(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != res.Schedule.Makespan() {
		t.Fatal("simulation disagrees on makespan")
	}
	pre, err := parabb.PreemptiveSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	// Preemptive one machine vs non-preemptive two machines: no fixed
	// ordering in general, but both must be internally consistent.
	if pre.Lmax == parabb.Infinity {
		t.Fatal("preemptive relaxation returned no result")
	}
}

func TestFacadeIDAAndAnytimeAgree(t *testing.T) {
	g, err := parabb.RandomWorkload(parabb.DefaultWorkload(), 987)
	if err != nil {
		t.Fatal(err)
	}
	plat := parabb.NewPlatform(3)
	seq, err := parabb.Solve(g, plat, parabb.Params{})
	if err != nil {
		t.Fatal(err)
	}
	ida, err := parabb.SolveIDA(g, plat, parabb.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if ida.Cost != seq.Cost {
		t.Fatalf("IDA %d != Solve %d", ida.Cost, seq.Cost)
	}
	any, err := parabb.SolveAnytime(g, plat, parabb.PortfolioOptions{Budget: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if any.Cost != seq.Cost {
		t.Fatalf("anytime %d != Solve %d", any.Cost, seq.Cost)
	}
	if any.Lower > any.Cost {
		t.Fatal("bound above cost")
	}
}

func TestFacadePeriodicGenerator(t *testing.T) {
	gen := parabb.NewWorkload(parabb.DefaultWorkload(), 5)
	ts, err := gen.PeriodicTaskSet(parabb.DefaultPeriodic())
	if err != nil {
		t.Fatal(err)
	}
	if u := parabb.Utilization(ts); u <= 0 || u > 1.2 {
		t.Fatalf("utilization %v out of band", u)
	}
	ex, err := parabb.Unroll(ts)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Graph.NumTasks() < ts.NumTasks() {
		t.Fatal("unroll shrank the task set")
	}
}

func TestFacadeFaultRecovery(t *testing.T) {
	g, err := parabb.RandomWorkload(parabb.DefaultWorkload(), 1234)
	if err != nil {
		t.Fatal(err)
	}
	p := parabb.NewPlatform(3)
	s, _, err := parabb.ListSchedule(g, p, parabb.ListHLFET)
	if err != nil {
		t.Fatal(err)
	}
	sc := &parabb.FaultScenario{Faults: []parabb.Fault{
		{Kind: parabb.FaultProcFailure, Proc: 1, At: s.Makespan() / 2},
	}}
	out, err := parabb.Recover(context.Background(), s, sc, nil,
		parabb.RecoveryOptions{Budget: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if fo := out.Fault; fo.Killed+fo.Unstarted > 0 && len(out.Merged) == 0 {
		t.Fatal("destroyed work but empty recovery plan")
	}
	if out.PostLmax < out.PreLmax {
		t.Fatalf("recovery improved on the fault-free plan: %d < %d", out.PostLmax, out.PreLmax)
	}
	if out.Degraded && out.BB != nil && out.BB.Reason == parabb.TermExhausted {
		t.Fatal("exhausted search but still degraded to the fallback")
	}
}

func TestFacadeCancellation(t *testing.T) {
	g, err := parabb.RandomWorkload(parabb.DefaultWorkload(), 4321)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := parabb.SolveContext(ctx, g, parabb.NewPlatform(2), parabb.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != parabb.TermCanceled {
		t.Fatalf("reason %v, want TermCanceled", res.Reason)
	}
	if res.Schedule == nil {
		t.Fatal("anytime contract broken: no incumbent returned on cancellation")
	}
}

func TestFacadeScenarioMatrix(t *testing.T) {
	g := buildPipeline(t)
	plat := parabb.NewPlatform(2)
	plat.Speed = []float64{1, 2}
	plat.Affinity = []uint64{3, 3, 1}
	if err := parabb.ValidatePlatformSpec(plat, g.NumTasks()); err != nil {
		t.Fatal(err)
	}
	bad := plat
	bad.Speed = []float64{1, 0}
	var spec *parabb.PlatformSpecError
	if err := parabb.ValidatePlatformSpec(bad, g.NumTasks()); !errors.As(err, &spec) || spec.Code != "speed_factor" {
		t.Fatalf("zero speed factor: got %v", err)
	}

	global, err := parabb.Solve(g, plat, parabb.Params{})
	if err != nil {
		t.Fatal(err)
	}
	part, err := parabb.SolvePartitioned(context.Background(), g, plat, parabb.PartitionedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !part.Optimal || part.Cost < global.Cost {
		t.Fatalf("partitioned Lmax %d (optimal=%v) vs global %d", part.Cost, part.Optimal, global.Cost)
	}

	// Sporadic releases through the facade: plan, unroll, solve.
	ps := parabb.NewGraph(1)
	ps.AddTask(parabb.Task{Name: "p", Exec: 2, Deadline: 8, Period: 10})
	rel, err := parabb.NewWorkload(parabb.DefaultWorkload(), 7).Releases(ps, parabb.ReleaseParams{Horizon: 30, StretchFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := parabb.UnrollReleases(ps, rel)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Graph.NumTasks() != len(rel[0]) {
		t.Fatalf("unrolled %d invocations, plan has %d", ex.Graph.NumTasks(), len(rel[0]))
	}
}
