// Command bbfuzz runs the differential testing campaign indefinitely (or
// for -n instances): every solver configuration is cross-checked against
// the others, the brute-force oracle, and the certified bounds on streams
// of random workloads. Any discrepancy aborts with a reproducer seed.
//
// With -residual the campaign instead targets fault recovery: random fault
// scenarios are injected into list schedules and the residual-problem
// construction plus the recovered plan are property-checked (coverage,
// dead processors, channel delivery, non-overlap, deterministic replay).
//
// With -hetero the campaign targets the heterogeneous scenario matrix:
// global and partitioned solves on random speed-factor/affinity platforms
// are cross-validated against their brute-force oracles, and explicit
// unit/universal specs are checked bit-identical to the legacy reference
// kernel.
//
// Usage:
//
//	bbfuzz [-n instances] [-seed base] [-tasks max] [-procs max]
//	       [-budget dur] [-residual] [-hetero] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/fuzzcheck"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "instances to check")
		seed     = flag.Int64("seed", time.Now().UnixNano()%1_000_000, "base seed")
		tasks    = flag.Int("tasks", 9, "max tasks per instance")
		procs    = flag.Int("procs", 3, "max processors")
		budget   = flag.Duration("budget", 5*time.Second, "per-solve budget")
		residual = flag.Bool("residual", false, "fuzz fault recovery instead of the solvers")
		hetero   = flag.Bool("hetero", false, "fuzz the heterogeneous/partitioned scenario matrix")
		v        = flag.Bool("v", false, "per-instance progress")
	)
	flag.Parse()
	cfg := fuzzcheck.Config{
		Instances: *n, Seed: *seed, MaxTasks: *tasks, Procs: *procs, Budget: *budget,
	}
	if *v {
		cfg.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	campaign, run := "differential", fuzzcheck.Run
	if *residual {
		campaign, run = "fault-recovery", fuzzcheck.RunResidual
	}
	if *hetero {
		campaign, run = "heterogeneous", fuzzcheck.RunHetero
	}
	fmt.Printf("bbfuzz: %d %s instances from seed %d (tasks<=%d, procs<=%d)\n",
		*n, campaign, *seed, *tasks, *procs)
	res, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbfuzz: DISCREPANCY:", err)
		os.Exit(1)
	}
	fmt.Printf("bbfuzz: clean — %d checked, %d skipped (budget)\n", res.Checked, res.Skipped)
}
