// Command bbreport generates a self-contained HTML dossier for one task
// graph on one platform: a-priori bounds, the whole algorithm ladder with
// a comparison table, inline Gantt charts, and (optionally) a dispatch
// robustness study under execution-time jitter.
//
// Usage:
//
//	bbreport [flags] graph.json|graph.stg
//
//	-m int          processors (default 2)
//	-o string       output file (default report.html)
//	-budget dur     exact-search budget (default 5s)
//	-title string   document title
//	-jitter int     robustness sweep runs per point (0 disables)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/taskgraph"
)

func main() {
	var (
		m      = flag.Int("m", 2, "processors")
		out    = flag.String("o", "report.html", "output file")
		budget = flag.Duration("budget", 5*time.Second, "exact-search budget")
		title  = flag.String("title", "", "document title")
		jitter = flag.Int("jitter", 20, "robustness sweep runs per point (0 disables)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bbreport [flags] graph.json|graph.stg")
		flag.PrintDefaults()
		os.Exit(2)
	}
	g, err := taskgraph.LoadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	doc, err := report.Build(g, platform.New(*m), report.Options{
		Budget: *budget, Title: *title, JitterRuns: *jitter,
	})
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(doc))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bbreport:", err)
	os.Exit(1)
}
