// Command bbvet runs the repository's custom static-analysis suite: the
// layering, nondeterminism, sync-hygiene, unchecked-error and
// panic-policy analyzers from internal/check.
//
// Usage:
//
//	bbvet [-list] [-run name[,name...]] [packages]
//
// Packages are directory patterns relative to the working directory
// ("./...", "./internal/core"). With no arguments, "./..." is assumed.
// bbvet exits 1 when any diagnostic is reported and 2 on operational
// errors. Individual findings can be allowlisted in the source with a
// "//bbvet:ignore <analyzer>" comment on the flagged line or the line
// directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/check"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range check.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := check.Analyzers()
	if *run != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			a := check.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "bbvet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbvet: %v\n", err)
		os.Exit(2)
	}
	mod, err := check.FindModule(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbvet: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := check.ExpandPatterns(mod, cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbvet: %v\n", err)
		os.Exit(2)
	}

	loader := check.NewLoader(mod)
	exit := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbvet: %s: %v\n", path, err)
			exit = 2
			continue
		}
		for _, d := range check.RunAnalyzers(pkg, analyzers) {
			fmt.Println(d)
			if exit == 0 {
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
