// Command bbvet runs the repository's custom static-analysis suite: the
// per-package analyzers from internal/check (layering, nondeterminism,
// sync hygiene, unchecked errors, panic policy) plus the whole-program
// analyzers (lockorder, goleak, hotalloc, wireschema) that see every
// requested package at once.
//
// Usage:
//
//	bbvet [-list] [-run name[,name...]] [-baseline file] [-strict-baseline]
//	      [-write-baseline] [-write-wireschema] [packages]
//
// Packages are directory patterns relative to the working directory
// ("./...", "./internal/core"). With no arguments, "./..." is assumed.
// bbvet exits 1 when any diagnostic is reported and 2 on operational
// errors. Individual findings can be allowlisted in the source with a
// "//bbvet:ignore <analyzer>" comment on the flagged line or the line
// directly above it; pre-existing accepted findings live in the baseline
// file (-baseline, default internal/check/testdata/bbvet.baseline) and
// are regenerated with -write-baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/check"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings (default internal/check/testdata/bbvet.baseline; 'none' disables)")
	strict := flag.Bool("strict-baseline", false, "also fail on baseline entries that match no current finding")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline file from the current findings and exit")
	writeWireSchema := flag.Bool("write-wireschema", false, "regenerate the wire-schema snapshot from the current source and exit")
	flag.Parse()

	if *list {
		for _, a := range check.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		for _, a := range check.ProgramAnalyzers() {
			fmt.Printf("%-10s %s (whole-program)\n", a.Name, a.Doc)
		}
		return
	}

	pkgAnalyzers := check.Analyzers()
	progAnalyzers := check.ProgramAnalyzers()
	if *run != "" {
		pkgAnalyzers = pkgAnalyzers[:0]
		progAnalyzers = progAnalyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			if a := check.ByName(name); a != nil {
				pkgAnalyzers = append(pkgAnalyzers, a)
				continue
			}
			if a := check.ProgramAnalyzerByName(name); a != nil {
				progAnalyzers = append(progAnalyzers, a)
				continue
			}
			fmt.Fprintf(os.Stderr, "bbvet: unknown analyzer %q (use -list)\n", name)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	mod, err := check.FindModule(cwd)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := check.ExpandPatterns(mod, cwd, patterns)
	if err != nil {
		fatal(err)
	}

	prog, err := check.LoadProgram(mod, paths, check.ProgramConfig{})
	if err != nil {
		fatal(err)
	}

	if *writeWireSchema {
		if err := check.WriteWireSchema(prog.Config.WireSnapshotFile, prog); err != nil {
			fatal(err)
		}
		fmt.Printf("bbvet: wrote %s\n", prog.Config.WireSnapshotFile)
		return
	}

	diags := prog.Run(pkgAnalyzers, progAnalyzers)

	if *writeBaseline {
		path := resolveBaseline(mod, *baselinePath)
		if path == "" {
			fatal(fmt.Errorf("-write-baseline with -baseline none"))
		}
		if err := check.WriteBaseline(path, mod, diags); err != nil {
			fatal(err)
		}
		fmt.Printf("bbvet: wrote %s (%d entries)\n", path, len(diags))
		return
	}

	if path := resolveBaseline(mod, *baselinePath); path != "" {
		baseline, err := check.LoadBaseline(path)
		if err != nil {
			fatal(err)
		}
		diags, _ = baseline.Filter(mod, diags, *strict)
	}

	exit := 0
	for _, d := range diags {
		fmt.Println(d)
		exit = 1
	}
	os.Exit(exit)
}

// resolveBaseline returns the baseline file to use: the explicit flag,
// "" for 'none', or the repo default.
func resolveBaseline(mod check.Module, flagValue string) string {
	switch flagValue {
	case "none":
		return ""
	case "":
		return filepath.Join(mod.Root, "internal", "check", "testdata", "bbvet.baseline")
	default:
		return flagValue
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bbvet: %v\n", err)
	os.Exit(2)
}
