// Command bbsched schedules one task graph on a multiprocessor with the
// parametrized branch-and-bound algorithm and reports the schedule, its
// maximum lateness, and the search statistics.
//
// Usage:
//
//	bbsched [flags] graph.json
//
//	-m int          processors (default 2)
//	-select string  vertex selection rule: lifo, llb, fifo (default lifo)
//	-branch string  branching rule: bfn, df, bf1 (default bfn)
//	-bound string   lower-bound function: lb1, lb0, none (default lb1)
//	-br float       inaccuracy limit in [0,1) (default 0)
//	-timeout dur    search time limit (default 30s; 0 = unlimited)
//	-parallel int   worker goroutines (0 = sequential solve)
//	-ida            cost-bounded iterative deepening (O(n) memory)
//	-edf            run only the greedy EDF baseline
//	-gantt          print a text Gantt chart
//	-svg string     write an SVG Gantt chart to this file
//	-json string    write a JSON schedule trace to this file
//	-improve        post-optimize the schedule with local search
//	-simulate       execute the schedule on the discrete-event platform
//	                simulator (explicit serializing bus) and report
//	-tracedot file  write the explored search tree as Graphviz DOT
//	                (sequential solves only; keep the instance small)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/gantt"
	"repro/internal/improve"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func main() {
	var (
		m        = flag.Int("m", 2, "processors")
		selFlag  = flag.String("select", "lifo", "selection rule: lifo, llb, fifo")
		brFlag   = flag.String("branch", "bfn", "branching rule: bfn, df, bf1")
		lbFlag   = flag.String("bound", "lb1", "lower bound: lb1, lb0, none")
		brLimit  = flag.Float64("br", 0, "inaccuracy limit BR in [0,1)")
		timeout  = flag.Duration("timeout", 30*time.Second, "search time limit (0 = unlimited)")
		parallel = flag.Int("parallel", 0, "worker goroutines (0 = sequential)")
		edfOnly  = flag.Bool("edf", false, "run only the greedy EDF baseline")
		doGantt  = flag.Bool("gantt", false, "print a text Gantt chart")
		svgPath  = flag.String("svg", "", "write SVG Gantt chart to file")
		jsonPath = flag.String("json", "", "write JSON trace to file")
		doImp    = flag.Bool("improve", false, "post-optimize with local search")
		doSim    = flag.Bool("simulate", false, "run the discrete-event platform simulator")
		traceDot = flag.String("tracedot", "", "write the explored search tree as DOT")
		ida      = flag.Bool("ida", false, "use cost-bounded iterative deepening (O(n) memory)")
		dedup    = flag.Bool("dedup", false, "prune duplicate partial schedules via a transposition table")
		dedupMiB = flag.Int64("dedup-budget", 0, "transposition table budget in MiB (0 = default, needs -dedup)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bbsched [flags] graph.json")
		flag.PrintDefaults()
		os.Exit(2)
	}

	g, err := taskgraph.LoadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	plat := platform.New(*m)

	var schedule *sched.Schedule
	var rec *trace.Recorder
	if *edfOnly {
		res, err := edf.Schedule(g, plat)
		if err != nil {
			fatal(err)
		}
		schedule = res.Schedule
		fmt.Printf("EDF: Lmax=%d makespan=%d steps=%d\n", res.Lmax, schedule.Makespan(), res.Steps)
	} else {
		params := core.Params{
			BR:          *brLimit,
			Resources:   core.ResourceBounds{TimeLimit: *timeout},
			Dedup:       *dedup,
			DedupBudget: *dedupMiB << 20,
		}
		if err := parseRules(&params, *selFlag, *brFlag, *lbFlag); err != nil {
			fatal(err)
		}
		if *traceDot != "" {
			if *parallel > 0 {
				fatal(fmt.Errorf("-tracedot requires a sequential solve"))
			}
			rec = trace.NewRecorder(200_000)
			params.Observer = rec.Observer()
		}

		var res core.Result
		switch {
		case *parallel > 0:
			res, err = core.SolveParallel(g, plat, core.ParallelParams{Params: params, Workers: *parallel})
		case *ida:
			res, err = core.SolveIDA(g, plat, params)
		default:
			res, err = core.Solve(g, plat, params)
		}
		if err != nil {
			fatal(err)
		}
		if res.Schedule == nil {
			fatal(fmt.Errorf("no feasible solution below the initial upper bound"))
		}
		schedule = res.Schedule
		fmt.Printf("B&B %v\n", params)
		fmt.Printf("  Lmax=%d makespan=%d optimal=%v guarantee=%v\n",
			res.Cost, schedule.Makespan(), res.Optimal, res.Guarantee)
		fmt.Printf("  vertices: generated=%d expanded=%d goals=%d pruned=%d maxAS=%d\n",
			res.Stats.Generated, res.Stats.Expanded, res.Stats.Goals,
			res.Stats.PrunedChildren, res.Stats.MaxActiveSet)
		if *dedup {
			fmt.Printf("  dedup: pruned=%d hits=%d evictions=%d tableBytes=%d/%d\n",
				res.Stats.DedupPruned, res.Stats.TableHits, res.Stats.TableEvictions,
				res.Stats.TableBytesInUse, res.Stats.TableBudget)
		}
		fmt.Printf("  elapsed=%v timedOut=%v\n", res.Stats.Elapsed.Round(time.Microsecond), res.Stats.TimedOut)
	}

	if err := schedule.Check(); err != nil {
		fatal(fmt.Errorf("internal error: produced schedule is invalid: %w", err))
	}
	if *doImp {
		impRes, err := improve.Improve(schedule, improve.Options{Seed: 1, Kicks: 3})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("local search: Lmax %d -> %d (%d moves, %d improvements)\n",
			impRes.Start, impRes.Cost, impRes.Moves, impRes.Improvements)
		schedule = impRes.Schedule
	}
	if *doSim {
		rep, err := sim.Run(schedule)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Summary())
	}
	if *traceDot != "" && rec != nil {
		fmt.Print(rec.Summary())
		if err := os.WriteFile(*traceDot, []byte(rec.DOT()), 0o644); err != nil {
			fatal(err)
		}
	}
	if *doGantt {
		fmt.Print(gantt.Text(schedule, 96))
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(gantt.SVG(schedule)), 0o644); err != nil {
			fatal(err)
		}
	}
	if *jsonPath != "" {
		data, err := gantt.JSON(schedule)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
	}
}

func parseRules(p *core.Params, sel, br, lb string) error {
	switch sel {
	case "lifo":
		p.Selection = core.SelectLIFO
	case "llb":
		p.Selection = core.SelectLLB
	case "fifo":
		p.Selection = core.SelectFIFO
	default:
		return fmt.Errorf("unknown selection rule %q", sel)
	}
	switch br {
	case "bfn":
		p.Branching = core.BranchBFn
	case "df":
		p.Branching = core.BranchDF
	case "bf1":
		p.Branching = core.BranchBF1
	default:
		return fmt.Errorf("unknown branching rule %q", br)
	}
	switch lb {
	case "lb1":
		p.Bound = core.BoundLB1
	case "lb0":
		p.Bound = core.BoundLB0
	case "none":
		p.Bound = core.BoundNone
	default:
		return fmt.Errorf("unknown bound %q", lb)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bbsched:", err)
	os.Exit(1)
}
