package main

import (
	"testing"

	"repro/internal/core"
)

func TestParseRules(t *testing.T) {
	var p core.Params
	if err := parseRules(&p, "llb", "df", "lb0"); err != nil {
		t.Fatal(err)
	}
	if p.Selection != core.SelectLLB || p.Branching != core.BranchDF || p.Bound != core.BoundLB0 {
		t.Fatalf("parsed %+v", p)
	}
	if err := parseRules(&p, "fifo", "bf1", "none"); err != nil {
		t.Fatal(err)
	}
	if p.Selection != core.SelectFIFO || p.Branching != core.BranchBF1 || p.Bound != core.BoundNone {
		t.Fatalf("parsed %+v", p)
	}
	for _, bad := range [][3]string{
		{"best", "bfn", "lb1"},
		{"lifo", "dfs", "lb1"},
		{"lifo", "bfn", "lb9"},
	} {
		if err := parseRules(&p, bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("accepted %v", bad)
		}
	}
}
