package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/server"
)

// TestMain lets tests re-exec this binary as bbload itself: with
// BBLOAD_BE_MAIN set, the test binary runs main() with its arguments.
func TestMain(m *testing.M) {
	if os.Getenv("BBLOAD_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// bbload re-execs the command against url and returns combined output.
func bbload(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BBLOAD_BE_MAIN=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// startServer runs an in-process serving instance for the CLI to hit.
func startServer(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	s := server.New(server.Config{Workers: 2, DefaultBudget: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts, s
}

// TestOneRequestPerEndpoint drives every endpoint once through the real
// CLI (the ISSUE's bbload -n 1 requirement).
func TestOneRequestPerEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	ts, srv := startServer(t)
	for _, ep := range []string{"solve", "anytime", "list", "analyze", "recover"} {
		out, err := bbload(t, "-url", ts.URL, "-endpoint", ep, "-n", "1",
			"-graphs", "1", "-c", "1", "-budget", "1s")
		if err != nil {
			t.Fatalf("endpoint %s: %v\n%s", ep, err, out)
		}
		if !strings.Contains(out, "1 ok, 0 rejected (429), 0 server errors (5xx), 0 other errors") {
			t.Fatalf("endpoint %s: unexpected report:\n%s", ep, out)
		}
	}
	ms := srv.Metrics()
	for _, ep := range []string{"solve", "anytime", "list", "analyze", "recover"} {
		if got := ms.Endpoints[ep].Requests; got != 1 {
			t.Errorf("server saw %d %s requests, want 1", got, ep)
		}
	}
}

// TestReplayHitsCache: more requests than distinct graphs — the second
// cycle is served from the result cache and the report says so.
func TestReplayHitsCache(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	ts, srv := startServer(t)
	out, err := bbload(t, "-url", ts.URL, "-endpoint", "analyze", "-n", "8",
		"-graphs", "2", "-c", "2", "-quiet")
	if err != nil {
		t.Fatalf("bbload: %v\n%s", err, out)
	}
	if !strings.Contains(out, "8 ok") {
		t.Fatalf("unexpected report:\n%s", out)
	}
	ms := srv.Metrics()
	if hits := ms.Endpoints["analyze"].CacheHits; hits < 6 {
		t.Fatalf("cache hits = %d, want ≥6 (8 requests over 2 instances)", hits)
	}
	if !strings.Contains(out, "6 cache hits") {
		t.Fatalf("report does not surface the cache hits:\n%s", out)
	}
}

// TestLoadReportsFailure: a dead server yields errors and exit 1.
func TestLoadReportsFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out, err := bbload(t, "-url", "http://127.0.0.1:1", "-endpoint", "analyze",
		"-n", "2", "-graphs", "1", "-c", "1", "-quiet")
	if err == nil {
		t.Fatalf("bbload succeeded against a dead server:\n%s", out)
	}
}

func TestBadEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out, err := bbload(t, "-endpoint", "zzz", "-n", "1")
	if err == nil {
		t.Fatalf("bbload accepted endpoint zzz:\n%s", out)
	}
}

// TestRetryAfterHonored: a server that 429s the first few hits must be
// absorbed by the retry loop — the run succeeds and the report counts
// the retried rejections without classing them as failures.
func TestRetryAfterHonored(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{}"))
	}))
	defer ts.Close()

	out, err := bbload(t, "-url", ts.URL, "-endpoint", "analyze", "-n", "3",
		"-graphs", "1", "-c", "1", "-quiet")
	if err != nil {
		t.Fatalf("bbload: %v\n%s", err, out)
	}
	if !strings.Contains(out, "3 ok, 0 rejected (429)") {
		t.Fatalf("retried 429s should not fail the run:\n%s", out)
	}
	if !strings.Contains(out, "2 429s absorbed by retries") {
		t.Fatalf("report does not surface the absorbed 429s:\n%s", out)
	}
}

// TestRetryBudgetExhausted: with -retries 0 a 429 is terminal and the
// run exits non-zero, counted as a rejection, not an error.
func TestRetryBudgetExhausted(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	out, err := bbload(t, "-url", ts.URL, "-endpoint", "analyze", "-n", "1",
		"-graphs", "1", "-c", "1", "-retries", "0", "-quiet")
	if err == nil {
		t.Fatalf("run with a terminal 429 should exit non-zero:\n%s", out)
	}
	if !strings.Contains(out, "0 ok, 1 rejected (429), 0 server errors (5xx), 0 other errors") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}

// TestServerErrorsCountedSeparately: 5xx responses must show up in their
// own column, not blended into transport errors or rejections.
func TestServerErrorsCountedSeparately(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	out, err := bbload(t, "-url", ts.URL, "-endpoint", "analyze", "-n", "2",
		"-graphs", "1", "-c", "1", "-quiet")
	if err == nil {
		t.Fatalf("run against a 500ing server should exit non-zero:\n%s", out)
	}
	if !strings.Contains(out, "0 ok, 0 rejected (429), 2 server errors (5xx), 0 other errors") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}

// TestTenantsMixedWorkload: -tenants cycles the X-Tenant header across
// the listed classes against a server configured with matching quotas,
// and the report adds per-tenant percentiles plus the fairness ratio.
func TestTenantsMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	s := server.New(server.Config{
		Workers:       2,
		DefaultBudget: 2 * time.Second,
		Tenants: []grid.Tenant{
			{Name: "gold", Weight: 2},
			{Name: "free", Weight: 1},
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	out, err := bbload(t, "-url", ts.URL, "-endpoint", "analyze", "-n", "8",
		"-graphs", "2", "-c", "2", "-tenants", "gold:2,free", "-quiet")
	if err != nil {
		t.Fatalf("bbload -tenants: %v\n%s", err, out)
	}
	for _, want := range []string{
		"8 ok",
		"bbload: tenant free: 4 ok",
		"bbload: tenant gold: 4 ok",
		"bbload: tenant throughput fairness max/min = ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
	// The server's admission classes must be visible in /metrics even
	// when the cheap cached endpoint never queued (counts stay zero).
	names := map[string]bool{}
	for _, ten := range s.Metrics().Tenants {
		names[ten.Name] = true
	}
	if !names["gold"] || !names["free"] {
		t.Errorf("server metrics lack the configured tenants: %v", names)
	}
}

// TestTenantsUnknownRejected: a tenant the server does not know is a
// terminal 400 per request — the run fails and counts them as errors.
func TestTenantsUnknownRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	ts, _ := startServer(t) // default-tenant-only server
	out, err := bbload(t, "-url", ts.URL, "-endpoint", "analyze", "-n", "2",
		"-graphs", "1", "-c", "1", "-tenants", "nosuch", "-quiet")
	if err == nil {
		t.Fatalf("bbload against unknown tenant succeeded:\n%s", out)
	}
	if !strings.Contains(out, "0 ok, 0 rejected (429), 0 server errors (5xx), 2 other errors") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}

// TestMultiURLRoundRobin: a comma-separated -url list spreads the run
// across servers per-ticket, so each backend sees an equal share.
func TestMultiURLRoundRobin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	ts0, s0 := startServer(t)
	ts1, s1 := startServer(t)
	out, err := bbload(t, "-url", ts0.URL+","+ts1.URL, "-endpoint", "analyze",
		"-n", "8", "-graphs", "4", "-c", "2", "-quiet")
	if err != nil {
		t.Fatalf("bbload multi-url: %v\n%s", err, out)
	}
	if !strings.Contains(out, "8 ok") {
		t.Fatalf("unexpected report:\n%s", out)
	}
	n0 := s0.Metrics().Endpoints["analyze"].Requests
	n1 := s1.Metrics().Endpoints["analyze"].Requests
	if n0 != 4 || n1 != 4 {
		t.Fatalf("request split = %d/%d, want 4/4", n0, n1)
	}
}

// TestDistributedHarness: -distributed against a coordinator-mode server
// re-execs worker processes on loopback and the run completes with every
// distributed solve OK.
func TestDistributedHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	fleet := dist.NewFleet(dist.Config{FrontierTarget: 8, RetryAfter: 5 * time.Millisecond})
	s := server.New(server.Config{Workers: 2, DefaultBudget: 30 * time.Second, Fleet: fleet})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	out, err := bbload(t, "-url", ts.URL, "-endpoint", "solve", "-n", "4",
		"-graphs", "2", "-c", "2", "-budget", "20s",
		"-distributed", "-dist-workers", "2", "-quiet")
	if err != nil {
		t.Fatalf("bbload -distributed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "4 ok, 0 rejected (429), 0 server errors (5xx), 0 other errors") {
		t.Fatalf("unexpected report:\n%s", out)
	}
	snap := fleet.Snapshot()
	if snap.Solves == 0 || snap.SlicesDispatched == 0 {
		t.Fatalf("fleet never solved anything: %+v", snap)
	}
}
