package main

import (
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestMain lets tests re-exec this binary as bbload itself: with
// BBLOAD_BE_MAIN set, the test binary runs main() with its arguments.
func TestMain(m *testing.M) {
	if os.Getenv("BBLOAD_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// bbload re-execs the command against url and returns combined output.
func bbload(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BBLOAD_BE_MAIN=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// startServer runs an in-process serving instance for the CLI to hit.
func startServer(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	s := server.New(server.Config{Workers: 2, DefaultBudget: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts, s
}

// TestOneRequestPerEndpoint drives every endpoint once through the real
// CLI (the ISSUE's bbload -n 1 requirement).
func TestOneRequestPerEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	ts, srv := startServer(t)
	for _, ep := range []string{"solve", "anytime", "list", "analyze", "recover"} {
		out, err := bbload(t, "-url", ts.URL, "-endpoint", ep, "-n", "1",
			"-graphs", "1", "-c", "1", "-budget", "1s")
		if err != nil {
			t.Fatalf("endpoint %s: %v\n%s", ep, err, out)
		}
		if !strings.Contains(out, "1 ok, 0 rejected (429), 0 errors") {
			t.Fatalf("endpoint %s: unexpected report:\n%s", ep, out)
		}
	}
	ms := srv.Metrics()
	for _, ep := range []string{"solve", "anytime", "list", "analyze", "recover"} {
		if got := ms.Endpoints[ep].Requests; got != 1 {
			t.Errorf("server saw %d %s requests, want 1", got, ep)
		}
	}
}

// TestReplayHitsCache: more requests than distinct graphs — the second
// cycle is served from the result cache and the report says so.
func TestReplayHitsCache(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	ts, srv := startServer(t)
	out, err := bbload(t, "-url", ts.URL, "-endpoint", "analyze", "-n", "8",
		"-graphs", "2", "-c", "2", "-quiet")
	if err != nil {
		t.Fatalf("bbload: %v\n%s", err, out)
	}
	if !strings.Contains(out, "8 ok") {
		t.Fatalf("unexpected report:\n%s", out)
	}
	ms := srv.Metrics()
	if hits := ms.Endpoints["analyze"].CacheHits; hits < 6 {
		t.Fatalf("cache hits = %d, want ≥6 (8 requests over 2 instances)", hits)
	}
	if !strings.Contains(out, "6 cache hits") {
		t.Fatalf("report does not surface the cache hits:\n%s", out)
	}
}

// TestLoadReportsFailure: a dead server yields errors and exit 1.
func TestLoadReportsFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out, err := bbload(t, "-url", "http://127.0.0.1:1", "-endpoint", "analyze",
		"-n", "2", "-graphs", "1", "-c", "1", "-quiet")
	if err == nil {
		t.Fatalf("bbload succeeded against a dead server:\n%s", out)
	}
}

func TestBadEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out, err := bbload(t, "-endpoint", "zzz", "-n", "1")
	if err == nil {
		t.Fatalf("bbload accepted endpoint zzz:\n%s", out)
	}
}
