// Command bbload is a closed-loop load generator for bbserved: c workers
// replay solver requests over a pool of generated workload instances and
// report throughput, error/rejection counts, cache behaviour, and latency
// percentiles.
//
// Usage:
//
//	bbload [flags]
//
//	-url string      base URL(s) of running bbserved replicas, comma-separated;
//	                 requests round-robin across them (default "http://127.0.0.1:8080")
//	-endpoint string solve|anytime|list|analyze|recover|mix (default "solve")
//	-tenants string  mixed-workload mode: comma-separated tenant names (weight
//	                 suffixes as in bbserved -tenants are accepted and ignored);
//	                 requests cycle the X-Tenant header across them
//	-n int           total requests (default 64)
//	-c int           concurrent clients (default 4)
//	-graphs int      distinct workload instances in the replay pool (default 16)
//	-procs int       processors per request (default 4)
//	-budget dur      per-request solve budget (default 2s)
//	-retries int     max retries per request after a 429 (default 3)
//	-seed int        workload seed (default 1997)
//	-distributed     mark solve requests distributed and spawn a worker fleet
//	-dist-workers    re-exec'd worker processes with -distributed (default 2)
//	-churn dur       with -distributed: drain and replace one worker at this interval
//	-dedup           solve requests request duplicate detection; after the run
//	                 the harness asserts every replica's /metrics transpose
//	                 high-water stayed within the table budget
//	-dedup-budget b  per-table byte budget for -dedup (0 = server default)
//	-hetero          mixed-scenario mode: solve requests cycle legacy
//	                 homogeneous, heterogeneous (speed factors + affinity
//	                 masks), and partitioned-mode scenarios
//	-quiet           suppress the per-run header
//
// Closed loop means each client issues its next request only after the
// previous one returned — the offered load adapts to the server instead
// of overrunning it, so the report measures sustainable throughput.
// Requests cycle through the instance pool; with -n larger than -graphs
// the tail of the run exercises the server's result cache.
//
// With -tenants the run becomes a fairness probe against a bbserved
// started with matching -tenants classes: request i carries the i-th
// tenant name (mod the list) in its X-Tenant header, and the report adds
// per-tenant ok counts, latency percentiles, throughput, and the
// max/min tenant-throughput ratio — under saturation that ratio should
// approach the configured weight ratio.
//
// A 429 rejection is retried up to -retries times, sleeping the server's
// Retry-After with ±50% jitter so released clients do not re-arrive in
// one wave; only a request that stays rejected counts against the run.
// The summary separates 429 rejections from 5xx server errors and
// transport failures, and reports how many 429s the retry loop absorbed.
//
// With -distributed (against a bbserved -distributed coordinator) the
// harness becomes a loopback multi-process fabric test: it re-execs
// itself -dist-workers times as fleet workers pointed at -url, replays
// solve requests carrying "distributed": true, and tears the workers
// down when the run ends. Adding -churn turns the fleet elastic: every
// interval the oldest worker is drained through POST /dist/v1/drain —
// it finishes its in-flight slice, hands leased work back, and exits —
// and a fresh worker is spawned in its place, so the run exercises the
// coordinator's join/drain autoscaling path under load.
//
// With -dedup every solve request turns on the transposition table, and
// the run ends with a memory assertion: each replica's /metrics transpose
// block must report table_bytes_high_water within table_budget. A server
// whose tables outgrew their hard budget under sustained load fails the
// run even if every request succeeded.
//
// With -hetero the replay pool becomes the scenario matrix: instance i
// is a legacy homogeneous solve (i%3 == 0), a heterogeneous global solve
// with per-processor speed factors and restricted affinity masks
// (i%3 == 1), or a partitioned-mode solve on the same heterogeneous
// platform (i%3 == 2). All three hit distinct cache lines, so the run
// exercises platform canonicalization and both solve modes side by
// side. -hetero supports only -endpoint solve, without -distributed
// (heterogeneous platforms cannot be distributed) and without -dedup
// (partitioned mode rejects the knob).
//
// Exit status: 0 when every request succeeded (2xx), 1 otherwise.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/deadline"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/listsched"
	"repro/internal/platform"
	"repro/internal/server"
)

func main() {
	// A re-exec'd copy of this binary acts as one fleet worker (see
	// -distributed): it joins the coordinator named by the env var and
	// solves leased slices until the parent signals it to stop.
	if coord := os.Getenv("BBLOAD_DIST_WORKER"); coord != "" {
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		w := dist.NewWorker(dist.WorkerConfig{
			Coordinator: coord,
			Name:        fmt.Sprintf("bbload-%d", os.Getpid()),
			Poll:        20 * time.Millisecond,
		})
		_ = w.Run(ctx)
		return
	}

	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8080", "comma-separated base URLs of running bbserved replicas")
		endpoint    = flag.String("endpoint", "solve", "solve|anytime|list|analyze|recover|mix")
		tenantsFlag = flag.String("tenants", "", "mixed-workload mode: comma-separated tenant names to cycle X-Tenant across")
		n           = flag.Int("n", 64, "total requests")
		c           = flag.Int("c", 4, "concurrent clients")
		graphs      = flag.Int("graphs", 16, "distinct workload instances")
		procs       = flag.Int("procs", 4, "processors per request")
		budget      = flag.Duration("budget", 2*time.Second, "per-request solve budget")
		retries     = flag.Int("retries", 3, "max retries per request after a 429")
		seed        = flag.Int64("seed", 1997, "workload seed")
		distributed = flag.Bool("distributed", false, "mark solve requests distributed and spawn a worker fleet")
		distWorkers = flag.Int("dist-workers", 2, "worker processes to spawn with -distributed")
		churn       = flag.Duration("churn", 0, "with -distributed: drain and replace one worker at this interval")
		dedup       = flag.Bool("dedup", false, "request duplicate detection on solves and assert the table budget via /metrics")
		dedupBudget = flag.Int64("dedup-budget", 0, "per-table byte budget for -dedup (0 = server default)")
		hetero      = flag.Bool("hetero", false, "mixed-scenario mode: cycle legacy, heterogeneous, and partitioned solves")
		quiet       = flag.Bool("quiet", false, "suppress the per-run header")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "bbload: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *n < 1 || *c < 1 || *graphs < 1 || *retries < 0 {
		fmt.Fprintln(os.Stderr, "bbload: -n, -c and -graphs must be positive, -retries non-negative")
		os.Exit(2)
	}
	if *distributed && *endpoint != "solve" {
		fmt.Fprintln(os.Stderr, "bbload: -distributed supports only -endpoint solve")
		os.Exit(2)
	}
	if *churn > 0 && (!*distributed || *distWorkers < 1) {
		fmt.Fprintln(os.Stderr, "bbload: -churn requires -distributed with -dist-workers >= 1")
		os.Exit(2)
	}
	if *dedup && *endpoint != "solve" && *endpoint != "mix" {
		fmt.Fprintln(os.Stderr, "bbload: -dedup applies only to -endpoint solve or mix")
		os.Exit(2)
	}
	if *dedupBudget != 0 && !*dedup {
		fmt.Fprintln(os.Stderr, "bbload: -dedup-budget requires -dedup")
		os.Exit(2)
	}
	if *hetero && (*endpoint != "solve" || *distributed || *dedup) {
		fmt.Fprintln(os.Stderr, "bbload: -hetero supports only -endpoint solve, without -distributed or -dedup")
		os.Exit(2)
	}
	if *hetero && (*procs < 2 || *procs > 64) {
		fmt.Fprintln(os.Stderr, "bbload: -hetero needs 2 <= -procs <= 64 (affinity masks)")
		os.Exit(2)
	}

	urls := splitList(*baseURL)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "bbload: -url must name at least one server")
		os.Exit(2)
	}
	tenantSpec, err := grid.ParseTenants(*tenantsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbload: %v\n", err)
		os.Exit(2)
	}
	tenants := make([]string, len(tenantSpec))
	for i, t := range tenantSpec {
		tenants[i] = t.Name
	}

	reqs, err := buildRequests(*endpoint, *graphs, *procs, budget.Milliseconds(), *seed, *distributed, *dedup, *dedupBudget, *hetero)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbload: %v\n", err)
		os.Exit(2)
	}
	if !*quiet {
		fmt.Printf("bbload: endpoint=%s n=%d c=%d graphs=%d procs=%d budget=%s url=%s\n",
			*endpoint, *n, *c, *graphs, *procs, *budget, *baseURL)
		if len(tenants) > 0 {
			fmt.Printf("bbload: tenants=%s\n", strings.Join(tenants, ","))
		}
	}

	var fleet *workerFleet
	if *distributed && *distWorkers > 0 {
		fleet, err = spawnWorkers(urls[0], *distWorkers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbload: spawn workers: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("bbload: spawned %d loopback workers\n", *distWorkers)
		}
	}
	var churnCancel context.CancelFunc
	churnDone := make(chan struct{})
	close(churnDone)
	if fleet != nil && *churn > 0 {
		var cctx context.Context
		cctx, churnCancel = context.WithCancel(context.Background())
		churnDone = make(chan struct{})
		go func() {
			defer close(churnDone)
			fleet.churn(cctx, *churn, *quiet)
		}()
	}

	rep := run(urls, tenants, reqs, *n, *c, *retries)
	if churnCancel != nil {
		churnCancel()
	}
	<-churnDone
	if fleet != nil {
		fleet.stop()
	}
	rep.print(os.Stdout)
	failed := rep.failed()
	if *dedup && !assertDedupBudget(urls, *quiet) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// assertDedupBudget reads every replica's /metrics transpose block after a
// -dedup run and checks the memory bound: the high-water bytes-in-use of
// any table must stay within the configured hard budget. Returns false
// (failing the run) on a violation, an unreachable replica, or a replica
// that never ran a dedup solve.
func assertDedupBudget(urls []string, quiet bool) bool {
	client := &http.Client{Timeout: 5 * time.Second}
	ok := true
	for _, u := range urls {
		resp, err := client.Get(u + "/metrics")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbload: dedup assertion: %s: %v\n", u, err)
			ok = false
			continue
		}
		var ms server.MetricsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&ms)
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbload: dedup assertion: %s: decode /metrics: %v\n", u, err)
			ok = false
			continue
		}
		tp := ms.Transpose
		if tp == nil || tp.Solves == 0 {
			fmt.Fprintf(os.Stderr, "bbload: dedup assertion: %s: no dedup solves recorded in /metrics\n", u)
			ok = false
			continue
		}
		if tp.BytesHighWater > tp.TableBudget {
			fmt.Fprintf(os.Stderr, "bbload: dedup assertion FAILED: %s: table high-water %d bytes > budget %d\n",
				u, tp.BytesHighWater, tp.TableBudget)
			ok = false
			continue
		}
		if !quiet {
			fmt.Printf("bbload: dedup assertion: %s: %d dedup solves, %d pruned, table high-water %d/%d bytes\n",
				u, tp.Solves, tp.DedupPruned, tp.BytesHighWater, tp.TableBudget)
		}
	}
	return ok
}

// workerFleet manages the re-exec'd worker processes of a -distributed
// run. Workers are named "bbload-<pid>" (the re-exec'd child derives the
// same name from its own pid), which is what lets churn target one of
// them through the coordinator's drain endpoint.
type workerFleet struct {
	coordinator string
	mu          sync.Mutex
	procs       []*exec.Cmd
}

// spawnWorkers re-execs this binary n times in worker mode against the
// coordinator.
func spawnWorkers(coordinator string, n int) (*workerFleet, error) {
	f := &workerFleet{coordinator: coordinator}
	for i := 0; i < n; i++ {
		if err := f.spawn(); err != nil {
			f.stop()
			return nil, err
		}
	}
	return f, nil
}

// spawn starts one worker process and tracks it for teardown.
func (f *workerFleet) spawn() error {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "BBLOAD_DIST_WORKER="+f.coordinator)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	f.mu.Lock()
	f.procs = append(f.procs, cmd)
	f.mu.Unlock()
	return nil
}

// stop terminates and reaps every tracked worker.
func (f *workerFleet) stop() {
	f.mu.Lock()
	procs := f.procs
	f.procs = nil
	f.mu.Unlock()
	for _, c := range procs {
		_ = c.Process.Signal(syscall.SIGTERM) // already-dead child is fine
	}
	for _, c := range procs {
		_ = c.Wait() // exit status is irrelevant at teardown
	}
}

// churn drains and replaces one worker per interval until the context is
// canceled: the oldest worker is asked to drain through the coordinator
// (it finishes its in-flight slice, releases the rest of its lease, and
// exits on its own), then a fresh worker joins in its place. A worker
// that ignores the drain for 10s is killed — the coordinator's lease TTL
// recovers whatever it held.
func (f *workerFleet) churn(ctx context.Context, interval time.Duration, quiet bool) {
	client := &http.Client{Timeout: 5 * time.Second}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for drains := 1; ; drains++ {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		f.mu.Lock()
		if len(f.procs) == 0 {
			f.mu.Unlock()
			return
		}
		victim := f.procs[0]
		f.procs = f.procs[1:]
		f.mu.Unlock()

		name := fmt.Sprintf("bbload-%d", victim.Process.Pid)
		body, _ := json.Marshal(dist.DrainRequest{Name: name})
		resp, err := client.Post(f.coordinator+"/dist/v1/drain", "application/json", bytes.NewReader(body))
		if err != nil {
			// Coordinator unreachable: fall back to a plain SIGTERM so the
			// churn cadence survives.
			_ = victim.Process.Signal(syscall.SIGTERM)
		} else {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				// Worker never joined (no solve has run yet): it holds no
				// work, so a signal is an equivalent drain.
				_ = victim.Process.Signal(syscall.SIGTERM)
			}
		}

		exited := make(chan struct{})
		go func() {
			_ = victim.Wait() // exit status is irrelevant; drained exit is 0
			close(exited)
		}()
		select {
		case <-exited:
		case <-time.After(10 * time.Second):
			_ = victim.Process.Kill()
			<-exited
		case <-ctx.Done():
			_ = victim.Process.Signal(syscall.SIGTERM)
			<-exited
			return
		}
		if err := f.spawn(); err != nil {
			fmt.Fprintf(os.Stderr, "bbload: churn respawn: %v\n", err)
			return
		}
		if !quiet {
			fmt.Printf("bbload: churn %d: drained %s, spawned a replacement\n", drains, name)
		}
	}
}

// request is one prepared POST: path plus marshaled body.
type request struct {
	path string
	body []byte
}

// buildRequests prepares the replay pool: one request per generated
// instance (cycling endpoints when endpoint is "mix", and scenario cells
// when hetero is set).
func buildRequests(endpoint string, graphs, procs int, budgetMS int64, seed int64, distributed, dedup bool, dedupBudget int64, hetero bool) ([]request, error) {
	endpoints := []string{endpoint}
	if endpoint == "mix" {
		endpoints = []string{"solve", "anytime", "list", "analyze", "recover"}
	}
	p := gen.Defaults()
	plat := platform.New(procs)
	reqs := make([]request, 0, graphs)
	for i := 0; i < graphs; i++ {
		g := gen.New(p, seed+int64(i)).Graph()
		if err := deadline.Assign(g, p.Laxity, deadline.EqualSlack); err != nil {
			return nil, err
		}
		ep := endpoints[i%len(endpoints)]
		gr := server.GraphRequest{Graph: g, Procs: procs}
		mode := ""
		if hetero && i%3 != 0 {
			// Scenario cells 1 and 2 run on a fast/slow platform where a
			// quarter of the tasks are pinned away from processor 0; cell 2
			// additionally switches to partitioned mode.
			universe := uint64(1)<<procs - 1
			gr.SpeedFactors = make([]float64, procs)
			for q := range gr.SpeedFactors {
				gr.SpeedFactors[q] = float64(1 + q&1)
			}
			gr.Affinities = make([]uint64, g.NumTasks())
			for id := range gr.Affinities {
				gr.Affinities[id] = universe
				if id%4 == 3 {
					gr.Affinities[id] = universe &^ 1
				}
			}
			if i%3 == 2 {
				mode = "partitioned"
			}
		}
		var (
			payload any
			path    = "/v1/" + ep
		)
		switch ep {
		case "solve":
			payload = server.SolveRequest{
				GraphRequest: gr, BudgetMS: budgetMS, Distributed: distributed,
				Dedup: dedup, DedupBudget: dedupBudget, Mode: mode,
			}
		case "anytime":
			payload = server.AnytimeRequest{GraphRequest: gr, BudgetMS: budgetMS, Seed: seed}
		case "list":
			payload = server.ListRequest{GraphRequest: gr}
		case "analyze":
			payload = server.AnalyzeRequest{GraphRequest: gr}
		case "recover":
			res, err := listsched.Best(g, plat)
			if err != nil {
				return nil, fmt.Errorf("instance %d: %v", i, err)
			}
			at := res.Schedule.Makespan() / 2
			proc := rand.New(rand.NewSource(seed + int64(i))).Intn(procs)
			payload = server.RecoverRequest{
				GraphRequest: gr,
				Schedule:     res.Schedule.Placements(),
				Faults: []server.FaultSpec{{
					Kind: "proc-failure", Proc: proc, At: at,
				}},
				BudgetMS: budgetMS,
			}
		default:
			return nil, fmt.Errorf("unknown endpoint %q", ep)
		}
		body, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, request{path: path, body: body})
	}
	return reqs, nil
}

// report aggregates a run's outcomes.
type report struct {
	wall      time.Duration
	ok        atomic.Int64
	rejected  atomic.Int64 // 429 after the retry budget ran out
	retried   atomic.Int64 // 429s absorbed by the retry loop
	server5xx atomic.Int64 // 5xx responses
	errored   atomic.Int64 // transport errors and remaining non-2xx
	cacheHits atomic.Int64 // X-Cache hit or peer
	peerHits  atomic.Int64 // the peer-served subset of cacheHits

	mu        sync.Mutex
	latencies []time.Duration
	tenants   map[string]*tenantStat
}

// tenantStat is one tenant's slice of the run (guarded by report.mu).
type tenantStat struct {
	ok        int64
	latencies []time.Duration
}

func (r *report) observe(tenant string, d time.Duration) {
	r.mu.Lock()
	r.latencies = append(r.latencies, d)
	if tenant != "" {
		r.tenantLocked(tenant).latencies = append(r.tenantLocked(tenant).latencies, d)
	}
	r.mu.Unlock()
}

func (r *report) tenantOK(tenant string) {
	if tenant == "" {
		return
	}
	r.mu.Lock()
	r.tenantLocked(tenant).ok++
	r.mu.Unlock()
}

func (r *report) tenantLocked(name string) *tenantStat {
	if r.tenants == nil {
		r.tenants = map[string]*tenantStat{}
	}
	ts := r.tenants[name]
	if ts == nil {
		ts = &tenantStat{}
		r.tenants[name] = ts
	}
	return ts
}

func (r *report) failed() bool {
	return r.errored.Load() > 0 || r.server5xx.Load() > 0 || r.rejected.Load() > 0
}

// quantile returns the q-th latency; the slice must be sorted.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (r *report) print(w io.Writer) {
	total := r.ok.Load() + r.rejected.Load() + r.server5xx.Load() + r.errored.Load()
	fmt.Fprintf(w, "bbload: %d requests: %d ok, %d rejected (429), %d server errors (5xx), %d other errors, %d cache hits\n",
		total, r.ok.Load(), r.rejected.Load(), r.server5xx.Load(), r.errored.Load(), r.cacheHits.Load())
	if n := r.peerHits.Load(); n > 0 {
		fmt.Fprintf(w, "bbload: %d of the cache hits were peer-served (grid fill)\n", n)
	}
	if n := r.retried.Load(); n > 0 {
		fmt.Fprintf(w, "bbload: %d 429s absorbed by retries (Retry-After honored, jittered)\n", n)
	}
	secs := r.wall.Seconds()
	if secs > 0 {
		fmt.Fprintf(w, "bbload: wall %s, %.1f req/s\n", r.wall.Round(time.Millisecond), float64(total)/secs)
	}
	r.mu.Lock()
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	if n := len(r.latencies); n > 0 {
		fmt.Fprintf(w, "bbload: latency p50=%s p90=%s p99=%s max=%s\n",
			quantile(r.latencies, 0.50).Round(time.Microsecond),
			quantile(r.latencies, 0.90).Round(time.Microsecond),
			quantile(r.latencies, 0.99).Round(time.Microsecond),
			r.latencies[n-1].Round(time.Microsecond))
	}
	if len(r.tenants) > 0 {
		names := make([]string, 0, len(r.tenants))
		for name := range r.tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		minTP, maxTP := math.Inf(1), 0.0
		for _, name := range names {
			ts := r.tenants[name]
			sort.Slice(ts.latencies, func(i, j int) bool { return ts.latencies[i] < ts.latencies[j] })
			var tp float64
			if secs > 0 {
				tp = float64(ts.ok) / secs
			}
			minTP, maxTP = math.Min(minTP, tp), math.Max(maxTP, tp)
			fmt.Fprintf(w, "bbload: tenant %s: %d ok, %.1f req/s, latency p50=%s p90=%s p99=%s\n",
				name, ts.ok, tp,
				quantile(ts.latencies, 0.50).Round(time.Microsecond),
				quantile(ts.latencies, 0.90).Round(time.Microsecond),
				quantile(ts.latencies, 0.99).Round(time.Microsecond))
		}
		if len(names) > 1 && minTP > 0 {
			fmt.Fprintf(w, "bbload: tenant throughput fairness max/min = %.2f\n", maxTP/minTP)
		}
	}
	r.mu.Unlock()
}

// backoff turns a 429's Retry-After header into a sleep with ±50% jitter
// so the c clients released by one overload burst do not re-arrive as a
// single wave. A missing or unparsable header falls back to 50ms doubling
// per attempt.
func backoff(retryAfter string, attempt int, rng *rand.Rand) time.Duration {
	base := 50 * time.Millisecond << (attempt - 1)
	if s, err := strconv.Atoi(retryAfter); err == nil && s >= 0 {
		base = time.Duration(s) * time.Second
		if base == 0 {
			base = 50 * time.Millisecond
		}
	}
	return time.Duration(float64(base) * (0.5 + rng.Float64()))
}

// run drives the closed loop: c clients drain a shared ticket counter,
// each retrying 429s up to the retry budget before counting a rejection.
// Request i goes to urls[i mod len(urls)] and, in mixed-workload mode,
// carries tenants[i mod len(tenants)] in its X-Tenant header — both
// assignments are per-ticket, so every server and tenant sees the same
// request mix regardless of client scheduling.
func run(urls, tenants []string, reqs []request, n, c, retries int) *report {
	rep := &report{}
	client := &http.Client{}
	post := func(url, tenant string, body []byte) (*http.Response, error) {
		hr, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hr.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			hr.Header.Set("X-Tenant", tenant)
		}
		return client.Do(hr)
	}
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(time.Now().UnixNano() + int64(w)))
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				req := reqs[i%len(reqs)]
				url := urls[i%len(urls)]
				tenant := ""
				if len(tenants) > 0 {
					tenant = tenants[i%len(tenants)]
				}
				t0 := time.Now()
				var resp *http.Response
				var err error
				for attempt := 0; ; attempt++ {
					resp, err = post(url+req.path, tenant, req.body)
					if err != nil || resp.StatusCode != http.StatusTooManyRequests || attempt >= retries {
						break
					}
					d := backoff(resp.Header.Get("Retry-After"), attempt+1, rng)
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
					rep.retried.Add(1)
					time.Sleep(d)
				}
				if err != nil {
					rep.errored.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				rep.observe(tenant, time.Since(t0))
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rep.rejected.Add(1)
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					rep.ok.Add(1)
					rep.tenantOK(tenant)
					switch resp.Header.Get("X-Cache") {
					case "hit":
						rep.cacheHits.Add(1)
					case "peer":
						rep.cacheHits.Add(1)
						rep.peerHits.Add(1)
					}
				case resp.StatusCode >= 500:
					rep.server5xx.Add(1)
				default:
					rep.errored.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	rep.wall = time.Since(start)
	return rep
}

// splitList splits a comma-separated flag into trimmed non-empty entries.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}
