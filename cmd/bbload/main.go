// Command bbload is a closed-loop load generator for bbserved: c workers
// replay solver requests over a pool of generated workload instances and
// report throughput, error/rejection counts, cache behaviour, and latency
// percentiles.
//
// Usage:
//
//	bbload [flags]
//
//	-url string      base URL of a running bbserved (default "http://127.0.0.1:8080")
//	-endpoint string solve|anytime|list|analyze|recover|mix (default "solve")
//	-n int           total requests (default 64)
//	-c int           concurrent clients (default 4)
//	-graphs int      distinct workload instances in the replay pool (default 16)
//	-procs int       processors per request (default 4)
//	-budget dur      per-request solve budget (default 2s)
//	-retries int     max retries per request after a 429 (default 3)
//	-seed int        workload seed (default 1997)
//	-distributed     mark solve requests distributed and spawn a worker fleet
//	-dist-workers    re-exec'd worker processes with -distributed (default 2)
//	-quiet           suppress the per-run header
//
// Closed loop means each client issues its next request only after the
// previous one returned — the offered load adapts to the server instead
// of overrunning it, so the report measures sustainable throughput.
// Requests cycle through the instance pool; with -n larger than -graphs
// the tail of the run exercises the server's result cache.
//
// A 429 rejection is retried up to -retries times, sleeping the server's
// Retry-After with ±50% jitter so released clients do not re-arrive in
// one wave; only a request that stays rejected counts against the run.
// The summary separates 429 rejections from 5xx server errors and
// transport failures, and reports how many 429s the retry loop absorbed.
//
// With -distributed (against a bbserved -distributed coordinator) the
// harness becomes a loopback multi-process fabric test: it re-execs
// itself -dist-workers times as fleet workers pointed at -url, replays
// solve requests carrying "distributed": true, and tears the workers
// down when the run ends.
//
// Exit status: 0 when every request succeeded (2xx), 1 otherwise.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/deadline"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/listsched"
	"repro/internal/platform"
	"repro/internal/server"
)

func main() {
	// A re-exec'd copy of this binary acts as one fleet worker (see
	// -distributed): it joins the coordinator named by the env var and
	// solves leased slices until the parent signals it to stop.
	if coord := os.Getenv("BBLOAD_DIST_WORKER"); coord != "" {
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		w := dist.NewWorker(dist.WorkerConfig{
			Coordinator: coord,
			Name:        fmt.Sprintf("bbload-%d", os.Getpid()),
			Poll:        20 * time.Millisecond,
		})
		_ = w.Run(ctx)
		return
	}

	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8080", "base URL of a running bbserved")
		endpoint    = flag.String("endpoint", "solve", "solve|anytime|list|analyze|recover|mix")
		n           = flag.Int("n", 64, "total requests")
		c           = flag.Int("c", 4, "concurrent clients")
		graphs      = flag.Int("graphs", 16, "distinct workload instances")
		procs       = flag.Int("procs", 4, "processors per request")
		budget      = flag.Duration("budget", 2*time.Second, "per-request solve budget")
		retries     = flag.Int("retries", 3, "max retries per request after a 429")
		seed        = flag.Int64("seed", 1997, "workload seed")
		distributed = flag.Bool("distributed", false, "mark solve requests distributed and spawn a worker fleet")
		distWorkers = flag.Int("dist-workers", 2, "worker processes to spawn with -distributed")
		quiet       = flag.Bool("quiet", false, "suppress the per-run header")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "bbload: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *n < 1 || *c < 1 || *graphs < 1 || *retries < 0 {
		fmt.Fprintln(os.Stderr, "bbload: -n, -c and -graphs must be positive, -retries non-negative")
		os.Exit(2)
	}
	if *distributed && *endpoint != "solve" {
		fmt.Fprintln(os.Stderr, "bbload: -distributed supports only -endpoint solve")
		os.Exit(2)
	}

	reqs, err := buildRequests(*endpoint, *graphs, *procs, budget.Milliseconds(), *seed, *distributed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbload: %v\n", err)
		os.Exit(2)
	}
	if !*quiet {
		fmt.Printf("bbload: endpoint=%s n=%d c=%d graphs=%d procs=%d budget=%s url=%s\n",
			*endpoint, *n, *c, *graphs, *procs, *budget, *baseURL)
	}

	var stopFleet func()
	if *distributed && *distWorkers > 0 {
		stopFleet, err = spawnWorkers(*baseURL, *distWorkers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbload: spawn workers: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("bbload: spawned %d loopback workers\n", *distWorkers)
		}
	}

	rep := run(*baseURL, reqs, *n, *c, *retries)
	if stopFleet != nil {
		stopFleet()
	}
	rep.print(os.Stdout)
	if rep.failed() {
		os.Exit(1)
	}
}

// spawnWorkers re-execs this binary n times in worker mode against the
// coordinator and returns a function that terminates and reaps them.
func spawnWorkers(coordinator string, n int) (func(), error) {
	procs := make([]*exec.Cmd, 0, n)
	kill := func() {
		for _, c := range procs {
			_ = c.Process.Signal(syscall.SIGTERM) // already-dead child is fine
		}
		for _, c := range procs {
			_ = c.Wait() // exit status is irrelevant at teardown
		}
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "BBLOAD_DIST_WORKER="+coordinator)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			kill()
			return nil, err
		}
		procs = append(procs, cmd)
	}
	return kill, nil
}

// request is one prepared POST: path plus marshaled body.
type request struct {
	path string
	body []byte
}

// buildRequests prepares the replay pool: one request per generated
// instance (cycling endpoints when endpoint is "mix").
func buildRequests(endpoint string, graphs, procs int, budgetMS int64, seed int64, distributed bool) ([]request, error) {
	endpoints := []string{endpoint}
	if endpoint == "mix" {
		endpoints = []string{"solve", "anytime", "list", "analyze", "recover"}
	}
	p := gen.Defaults()
	plat := platform.New(procs)
	reqs := make([]request, 0, graphs)
	for i := 0; i < graphs; i++ {
		g := gen.New(p, seed+int64(i)).Graph()
		if err := deadline.Assign(g, p.Laxity, deadline.EqualSlack); err != nil {
			return nil, err
		}
		ep := endpoints[i%len(endpoints)]
		gr := server.GraphRequest{Graph: g, Procs: procs}
		var (
			payload any
			path    = "/v1/" + ep
		)
		switch ep {
		case "solve":
			payload = server.SolveRequest{GraphRequest: gr, BudgetMS: budgetMS, Distributed: distributed}
		case "anytime":
			payload = server.AnytimeRequest{GraphRequest: gr, BudgetMS: budgetMS, Seed: seed}
		case "list":
			payload = server.ListRequest{GraphRequest: gr}
		case "analyze":
			payload = server.AnalyzeRequest{GraphRequest: gr}
		case "recover":
			res, err := listsched.Best(g, plat)
			if err != nil {
				return nil, fmt.Errorf("instance %d: %v", i, err)
			}
			at := res.Schedule.Makespan() / 2
			proc := rand.New(rand.NewSource(seed + int64(i))).Intn(procs)
			payload = server.RecoverRequest{
				GraphRequest: gr,
				Schedule:     res.Schedule.Placements(),
				Faults: []server.FaultSpec{{
					Kind: "proc-failure", Proc: proc, At: at,
				}},
				BudgetMS: budgetMS,
			}
		default:
			return nil, fmt.Errorf("unknown endpoint %q", ep)
		}
		body, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, request{path: path, body: body})
	}
	return reqs, nil
}

// report aggregates a run's outcomes.
type report struct {
	wall      time.Duration
	ok        atomic.Int64
	rejected  atomic.Int64 // 429 after the retry budget ran out
	retried   atomic.Int64 // 429s absorbed by the retry loop
	server5xx atomic.Int64 // 5xx responses
	errored   atomic.Int64 // transport errors and remaining non-2xx
	cacheHits atomic.Int64

	mu        sync.Mutex
	latencies []time.Duration
}

func (r *report) observe(d time.Duration) {
	r.mu.Lock()
	r.latencies = append(r.latencies, d)
	r.mu.Unlock()
}

func (r *report) failed() bool {
	return r.errored.Load() > 0 || r.server5xx.Load() > 0 || r.rejected.Load() > 0
}

// quantile returns the q-th latency; the slice must be sorted.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (r *report) print(w io.Writer) {
	total := r.ok.Load() + r.rejected.Load() + r.server5xx.Load() + r.errored.Load()
	fmt.Fprintf(w, "bbload: %d requests: %d ok, %d rejected (429), %d server errors (5xx), %d other errors, %d cache hits\n",
		total, r.ok.Load(), r.rejected.Load(), r.server5xx.Load(), r.errored.Load(), r.cacheHits.Load())
	if n := r.retried.Load(); n > 0 {
		fmt.Fprintf(w, "bbload: %d 429s absorbed by retries (Retry-After honored, jittered)\n", n)
	}
	secs := r.wall.Seconds()
	if secs > 0 {
		fmt.Fprintf(w, "bbload: wall %s, %.1f req/s\n", r.wall.Round(time.Millisecond), float64(total)/secs)
	}
	r.mu.Lock()
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	if n := len(r.latencies); n > 0 {
		fmt.Fprintf(w, "bbload: latency p50=%s p90=%s p99=%s max=%s\n",
			quantile(r.latencies, 0.50).Round(time.Microsecond),
			quantile(r.latencies, 0.90).Round(time.Microsecond),
			quantile(r.latencies, 0.99).Round(time.Microsecond),
			r.latencies[n-1].Round(time.Microsecond))
	}
	r.mu.Unlock()
}

// backoff turns a 429's Retry-After header into a sleep with ±50% jitter
// so the c clients released by one overload burst do not re-arrive as a
// single wave. A missing or unparsable header falls back to 50ms doubling
// per attempt.
func backoff(retryAfter string, attempt int, rng *rand.Rand) time.Duration {
	base := 50 * time.Millisecond << (attempt - 1)
	if s, err := strconv.Atoi(retryAfter); err == nil && s >= 0 {
		base = time.Duration(s) * time.Second
		if base == 0 {
			base = 50 * time.Millisecond
		}
	}
	return time.Duration(float64(base) * (0.5 + rng.Float64()))
}

// run drives the closed loop: c clients drain a shared ticket counter,
// each retrying 429s up to the retry budget before counting a rejection.
func run(baseURL string, reqs []request, n, c, retries int) *report {
	rep := &report{}
	client := &http.Client{}
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(time.Now().UnixNano() + int64(w)))
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				req := reqs[i%len(reqs)]
				t0 := time.Now()
				var resp *http.Response
				var err error
				for attempt := 0; ; attempt++ {
					resp, err = client.Post(baseURL+req.path, "application/json", bytes.NewReader(req.body))
					if err != nil || resp.StatusCode != http.StatusTooManyRequests || attempt >= retries {
						break
					}
					d := backoff(resp.Header.Get("Retry-After"), attempt+1, rng)
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
					rep.retried.Add(1)
					time.Sleep(d)
				}
				if err != nil {
					rep.errored.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				rep.observe(time.Since(t0))
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rep.rejected.Add(1)
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					rep.ok.Add(1)
					if resp.Header.Get("X-Cache") == "hit" {
						rep.cacheHits.Add(1)
					}
				case resp.StatusCode >= 500:
					rep.server5xx.Add(1)
				default:
					rep.errored.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	rep.wall = time.Since(start)
	return rep
}
