package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deadline"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/taskgraph"
)

// TestMain lets the e2e tests re-exec this binary in two roles: with
// BBWORKER_BE_MAIN set it runs main() (a real bbworker process), with
// BBWORKER_BE_COORD set it runs a coordinator that solves the instances
// named by the environment and prints one RESULT line per solve.
func TestMain(m *testing.M) {
	switch {
	case os.Getenv("BBWORKER_BE_COORD") == "1":
		coordMain()
		os.Exit(0)
	case os.Getenv("BBWORKER_BE_MAIN") == "1":
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// pinnedInstance is the fuzzcheck kernel campaign's instance recipe — the
// same pinned suite the in-process equivalence test uses.
func pinnedInstance(seed int64) (*taskgraph.Graph, platform.Platform, error) {
	gp := gen.Defaults()
	gp.NMin, gp.NMax = 5, 10
	gp.DepthMin, gp.DepthMax = 2, 5
	gp.CCR = float64(seed%4) / 2.0
	g := gen.New(gp, seed).Graph()
	laxity := 0.8 + float64(seed%5)*0.25
	pol := deadline.EqualSlack
	if seed%2 == 1 {
		pol = deadline.Proportional
	}
	if err := deadline.Assign(g, laxity, pol); err != nil {
		return nil, platform.Platform{}, err
	}
	return g, platform.New(1 + int(seed)%3), nil
}

// paperInstance draws one full paper-default workload (12–16 tasks) on
// three processors — big enough that a solve takes visible wall-clock.
func paperInstance(seed int64) (*taskgraph.Graph, platform.Platform, error) {
	p := gen.Defaults()
	g := gen.New(p, seed).Graph()
	if err := deadline.Assign(g, p.Laxity, deadline.EqualSlack); err != nil {
		return nil, platform.Platform{}, err
	}
	return g, platform.New(3), nil
}

func e2eInstance(kind string, seed int64) (*taskgraph.Graph, platform.Platform, error) {
	if kind == "paper" {
		return paperInstance(seed)
	}
	return pinnedInstance(seed)
}

func e2eParams(sel string) core.Params {
	var p core.Params
	if sel == "llb" {
		p.Selection = core.SelectLLB
	}
	return p
}

// coordMain is the re-exec'd coordinator: it mounts a fleet on loopback,
// prints "COORD <addr>", solves each instance from BBWORKER_COORD_SEEDS,
// and prints one RESULT line per solve plus a final COUNTERS line.
//
// Extra environment knobs for the crash-recovery e2e:
// BBWORKER_COORD_JOURNAL names a checkpoint journal (and turns on the
// per-solve PLACEMENTS line plus fleet logging to stdout, so the test
// can watch search progress); BBWORKER_COORD_RESUME=1 resumes the
// journal instead of solving seeds; BBWORKER_COORD_MAXLEASE and
// BBWORKER_COORD_NOSPEC=1 pin the dispatch order deterministic.
func coordMain() {
	fail := func(err error) {
		fmt.Printf("COORDERR %v\n", err)
		os.Exit(1)
	}
	leaseMS, _ := strconv.Atoi(os.Getenv("BBWORKER_COORD_LEASE_MS"))
	frontier, _ := strconv.Atoi(os.Getenv("BBWORKER_COORD_FRONTIER"))
	maxLease, _ := strconv.Atoi(os.Getenv("BBWORKER_COORD_MAXLEASE"))
	journal := os.Getenv("BBWORKER_COORD_JOURNAL")
	cfg := dist.Config{
		FrontierTarget: frontier,
		MaxLease:       maxLease,
		LeaseTTL:       time.Duration(leaseMS) * time.Millisecond,
		RetryAfter:     5 * time.Millisecond,
		JournalPath:    journal,
		NoSpeculation:  os.Getenv("BBWORKER_COORD_NOSPEC") == "1",
	}
	if journal != "" {
		cfg.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	fleet := dist.NewFleet(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	go func() { _ = http.Serve(ln, fleet.Handler()) }()
	fmt.Printf("COORD %s\n", ln.Addr())

	emit := func(seed int64, res core.Result) {
		fmt.Printf("RESULT seed=%d cost=%d optimal=%t guarantee=%t reason=%s\n",
			seed, res.Cost, res.Optimal, res.Guarantee, res.Reason)
		if journal != "" && res.Schedule != nil {
			pls, err := json.Marshal(res.Schedule.Placements())
			if err != nil {
				fail(err)
			}
			fmt.Printf("PLACEMENTS seed=%d %s\n", seed, pls)
		}
	}

	if os.Getenv("BBWORKER_COORD_RESUME") == "1" {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		res, err := fleet.Resume(ctx)
		cancel()
		if err != nil {
			fail(err)
		}
		emit(0, res)
	} else {
		kind := os.Getenv("BBWORKER_COORD_KIND")
		p := e2eParams(os.Getenv("BBWORKER_COORD_SELECT"))
		for _, s := range strings.Split(os.Getenv("BBWORKER_COORD_SEEDS"), ",") {
			seed, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				fail(err)
			}
			g, plat, err := e2eInstance(kind, seed)
			if err != nil {
				fail(err)
			}
			fmt.Printf("SOLVING %d\n", seed)
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			res, err := fleet.Solve(ctx, g, plat, p)
			cancel()
			if err != nil {
				fail(err)
			}
			emit(seed, res)
		}
	}
	snap := fleet.Snapshot()
	fmt.Printf("COUNTERS dispatched=%d stolen=%d redispatched=%d evictions=%d broadcasts=%d\n",
		snap.SlicesDispatched, snap.SlicesStolen, snap.SlicesRedispatched,
		snap.WorkerEvictions, snap.IncumbentBroadcasts)
}

// coordProc is a running re-exec'd coordinator plus its parsed output.
type coordProc struct {
	cmd  *exec.Cmd
	out  *bufio.Scanner
	addr string
}

// startCoord launches the coordinator child and blocks until it prints
// its listen address.
func startCoord(t *testing.T, env ...string) *coordProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "BBWORKER_BE_COORD=1")
	cmd.Env = append(cmd.Env, env...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill() //bbvet:ignore errcheck — may have exited already
		_ = cmd.Wait()         //bbvet:ignore errcheck — teardown
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "COORD "); ok {
			return &coordProc{cmd: cmd, out: sc, addr: addr}
		}
	}
	t.Fatalf("coordinator never announced its address (scan err %v)", sc.Err())
	return nil
}

// expect reads coordinator output until a line with the prefix appears,
// failing the test on COORDERR or stream end.
func (c *coordProc) expect(t *testing.T, prefix string) string {
	t.Helper()
	for c.out.Scan() {
		line := c.out.Text()
		if strings.HasPrefix(line, "COORDERR") {
			t.Fatalf("coordinator failed: %s", line)
		}
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	t.Fatalf("coordinator output ended before %q (scan err %v)", prefix, c.out.Err())
	return ""
}

// startWorkerProc launches a real bbworker process against the
// coordinator. The returned channel fires once the worker has adopted a
// lease (its stderr logs "dist: solve"), i.e. once it owns slices.
func startWorkerProc(t *testing.T, addr, name string) (*exec.Cmd, <-chan struct{}) {
	t.Helper()
	cmd := exec.Command(os.Args[0],
		"-coordinator", "http://"+addr, "-name", name, "-poll", "5ms", "-v")
	cmd.Env = append(os.Environ(), "BBWORKER_BE_MAIN=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGTERM) //bbvet:ignore errcheck — may have exited already
		_ = cmd.Wait()                          //bbvet:ignore errcheck — teardown
	})
	leased := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stderr)
		fired := false
		for sc.Scan() {
			if !fired && strings.Contains(sc.Text(), "dist: solve") {
				fired = true
				close(leased)
			}
		}
		if !fired {
			close(leased)
		}
	}()
	return cmd, leased
}

type resultLine struct {
	seed               int64
	cost               int64
	optimal, guarantee bool
	reason             string
}

func parseResult(t *testing.T, line string) resultLine {
	t.Helper()
	var r resultLine
	if _, err := fmt.Sscanf(line, "RESULT seed=%d cost=%d optimal=%t guarantee=%t reason=%s",
		&r.seed, &r.cost, &r.optimal, &r.guarantee, &r.reason); err != nil {
		t.Fatalf("unparsable result %q: %v", line, err)
	}
	return r
}

// TestE2EDistributedProcesses is the full multi-process acceptance check:
// a re-exec'd coordinator plus two real bbworker processes on loopback
// must return bit-identical Cost/Optimal/Guarantee to in-process
// core.Solve across the pinned suite.
func TestE2EDistributedProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	seeds := []int64{4000, 4001, 4002, 4003}
	var specs []string
	for _, s := range seeds {
		specs = append(specs, strconv.FormatInt(s, 10))
	}
	coord := startCoord(t,
		"BBWORKER_COORD_KIND=pinned",
		"BBWORKER_COORD_SEEDS="+strings.Join(specs, ","),
		"BBWORKER_COORD_FRONTIER=4",
	)
	startWorkerProc(t, coord.addr, "w1")
	startWorkerProc(t, coord.addr, "w2")

	for _, seed := range seeds {
		got := parseResult(t, coord.expect(t, "RESULT "))
		if got.seed != seed {
			t.Fatalf("results out of order: got seed %d, want %d", got.seed, seed)
		}
		g, plat, err := pinnedInstance(seed)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := core.Solve(g, plat, core.Params{})
		if err != nil {
			t.Fatal(err)
		}
		if got.cost != int64(seq.Cost) || got.optimal != seq.Optimal || got.guarantee != seq.Guarantee {
			t.Fatalf("seed %d: distributed (cost=%d opt=%t guar=%t) != sequential (cost=%d opt=%t guar=%t)",
				seed, got.cost, got.optimal, got.guarantee, seq.Cost, seq.Optimal, seq.Guarantee)
		}
	}
	counters := coord.expect(t, "COUNTERS ")
	var dispatched, stolen, redispatched, evictions, broadcasts int64
	if _, err := fmt.Sscanf(counters, "COUNTERS dispatched=%d stolen=%d redispatched=%d evictions=%d broadcasts=%d",
		&dispatched, &stolen, &redispatched, &evictions, &broadcasts); err != nil {
		t.Fatalf("unparsable counters %q: %v", counters, err)
	}
	if dispatched == 0 {
		t.Error("coordinator never dispatched a slice — the workers were not exercised")
	}
}

// TestE2EWorkerKillRecovery SIGKILLs one of two workers while it holds
// leased slices mid-solve; the coordinator must evict it, re-dispatch its
// slices, and still finish with the sequential cost and proof intact.
func TestE2EWorkerKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	// Paper seed 903 under LLB: ~1.2s of sequential search, so the kill
	// lands well inside the solve. Speculation is off because this test
	// targets the eviction path — a speculative re-dispatch would recover
	// the dead worker's slices before the lease TTL fires.
	coord := startCoord(t,
		"BBWORKER_COORD_KIND=paper",
		"BBWORKER_COORD_SEEDS=903",
		"BBWORKER_COORD_SELECT=llb",
		"BBWORKER_COORD_LEASE_MS=300",
		"BBWORKER_COORD_NOSPEC=1",
	)
	victim, victimLeased := startWorkerProc(t, coord.addr, "victim")
	startWorkerProc(t, coord.addr, "survivor")

	coord.expect(t, "SOLVING ")
	select {
	case <-victimLeased:
	case <-time.After(30 * time.Second):
		t.Fatal("victim never leased a slice")
	}
	if err := victim.Process.Kill(); err != nil { // SIGKILL: no report, no goodbye
		t.Fatal(err)
	}

	got := parseResult(t, coord.expect(t, "RESULT "))
	g, plat, err := paperInstance(903)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.Solve(g, plat, e2eParams("llb"))
	if err != nil {
		t.Fatal(err)
	}
	if got.cost != int64(seq.Cost) || got.optimal != seq.Optimal || got.guarantee != seq.Guarantee {
		t.Fatalf("post-kill solve (cost=%d opt=%t guar=%t) != sequential (cost=%d opt=%t guar=%t)",
			got.cost, got.optimal, got.guarantee, seq.Cost, seq.Optimal, seq.Guarantee)
	}
	if got.reason != "exhausted" {
		t.Fatalf("post-kill solve lost the exhaustion proof: reason=%s", got.reason)
	}

	counters := coord.expect(t, "COUNTERS ")
	var dispatched, stolen, redispatched, evictions, broadcasts int64
	if _, err := fmt.Sscanf(counters, "COUNTERS dispatched=%d stolen=%d redispatched=%d evictions=%d broadcasts=%d",
		&dispatched, &stolen, &redispatched, &evictions, &broadcasts); err != nil {
		t.Fatalf("unparsable counters %q: %v", counters, err)
	}
	if evictions == 0 || redispatched == 0 {
		t.Errorf("kill was not recovered through eviction: evictions=%d redispatched=%d", evictions, redispatched)
	}
}

// TestE2ECoordinatorKillRecovery SIGKILLs the coordinator process itself
// mid-solve and restarts a fresh coordinator against the same checkpoint
// journal: the resumed solve must reproduce the uninterrupted run
// byte-for-byte — cost, optimality reason, and schedule placements.
func TestE2ECoordinatorKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	// Deterministic dispatch: one worker, one slice per lease, no
	// speculation — slice order and incumbent adoption order are then a
	// pure function of the instance, so every crash point resumes to the
	// identical schedule.
	env := func(journal string) []string {
		return []string{
			"BBWORKER_COORD_KIND=paper",
			"BBWORKER_COORD_SEEDS=903",
			"BBWORKER_COORD_SELECT=llb",
			"BBWORKER_COORD_MAXLEASE=1",
			"BBWORKER_COORD_NOSPEC=1",
			"BBWORKER_COORD_JOURNAL=" + journal,
		}
	}
	splitPlacements := func(t *testing.T, line string) string {
		t.Helper()
		parts := strings.SplitN(line, " ", 3) // "PLACEMENTS seed=N <json>"
		if len(parts) != 3 {
			t.Fatalf("unparsable placements line %q", line)
		}
		return parts[2]
	}

	// Uninterrupted baseline on its own journal.
	base := startCoord(t, env(filepath.Join(dir, "baseline.jsonl"))...)
	startWorkerProc(t, base.addr, "base-w")
	baseRes := parseResult(t, base.expect(t, "RESULT "))
	basePls := splitPlacements(t, base.expect(t, "PLACEMENTS "))

	g, plat, err := paperInstance(903)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.Solve(g, plat, e2eParams("llb"))
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.cost != int64(seq.Cost) || baseRes.optimal != seq.Optimal {
		t.Fatalf("baseline (cost=%d opt=%t) != sequential (cost=%d opt=%t)",
			baseRes.cost, baseRes.optimal, seq.Cost, seq.Optimal)
	}

	// Interrupted run: same instance on a fresh journal; SIGKILL the
	// coordinator once the journal holds real progress beyond the solve
	// record (slice completions and adopted incumbents).
	journal := filepath.Join(dir, "crash.jsonl")
	coord := startCoord(t, env(journal)...)
	startWorkerProc(t, coord.addr, "victim-w")
	coord.expect(t, "SOLVING ")
	waitUntil := time.Now().Add(60 * time.Second)
	for {
		raw, err := os.ReadFile(journal)
		if err == nil && strings.Count(string(raw), "\n") >= 3 {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatal("journal never accumulated checkpoint records")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// SIGKILL: no final record, no fsync courtesy — whatever made it to
	// disk is all the next coordinator gets. (The solve may in rare runs
	// already have finished; resume then just re-assembles the result,
	// which must still match.)
	_ = coord.cmd.Process.Kill() //bbvet:ignore errcheck — may have exited already

	// A standby coordinator adopts the journal with a brand-new worker.
	resumed := startCoord(t, append(env(journal), "BBWORKER_COORD_RESUME=1")...)
	startWorkerProc(t, resumed.addr, "resume-w")
	gotRes := parseResult(t, resumed.expect(t, "RESULT "))
	gotPls := splitPlacements(t, resumed.expect(t, "PLACEMENTS "))

	if gotRes.cost != baseRes.cost || gotRes.optimal != baseRes.optimal ||
		gotRes.guarantee != baseRes.guarantee || gotRes.reason != baseRes.reason {
		t.Fatalf("resumed solve (cost=%d opt=%t guar=%t reason=%s) != uninterrupted (cost=%d opt=%t guar=%t reason=%s)",
			gotRes.cost, gotRes.optimal, gotRes.guarantee, gotRes.reason,
			baseRes.cost, baseRes.optimal, baseRes.guarantee, baseRes.reason)
	}
	if gotPls != basePls {
		t.Fatalf("resumed placements differ from uninterrupted run:\n base: %s\n  got: %s", basePls, gotPls)
	}
}
