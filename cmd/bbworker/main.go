// Command bbworker is the execution side of the distributed B&B fabric:
// it joins a coordinator (bbserved -distributed, or any internal/dist
// Fleet), leases frontier slices, solves each with the sequential kernel
// under the shared incumbent, publishes improvements immediately, and
// reports every outcome back.
//
// Usage:
//
//	bbworker -coordinator http://host:8080 [flags]
//
//	-coordinator string  coordinator base URL (required)
//	-name string         worker label in coordinator logs (default host-pid)
//	-poll dur            idle polling interval (default 100ms)
//	-max-lease int       max slices per lease (0 = coordinator default)
//	-v                   per-slice logging to stderr
//
// SIGINT/SIGTERM stops cleanly: the in-flight slice solve is canceled
// (the coordinator re-dispatches it after the lease TTL) and the process
// exits 0. A coordinator-initiated drain (POST /dist/v1/drain naming this
// worker) also exits 0: the worker finishes its current slice, hands any
// remaining leased slices back, and reports "drained".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dist"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL (required)")
		name        = flag.String("name", "", "worker label (default host-pid)")
		poll        = flag.Duration("poll", 100*time.Millisecond, "idle polling interval")
		maxLease    = flag.Int("max-lease", 0, "max slices per lease (0 = coordinator default)")
		verbose     = flag.Bool("v", false, "per-slice logging")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "bbworker: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "bbworker: -coordinator is required")
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	cfg := dist.WorkerConfig{
		Coordinator: *coordinator,
		Name:        *name,
		Poll:        *poll,
		MaxLease:    *maxLease,
	}
	if *verbose {
		cfg.Logf = log.New(os.Stderr, "bbworker: ", log.LstdFlags).Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	w := dist.NewWorker(cfg)
	fmt.Printf("bbworker: %s -> %s\n", *name, *coordinator)
	err := w.Run(ctx)
	switch {
	case errors.Is(err, dist.ErrDrained):
		fmt.Printf("bbworker: drained by coordinator after %d slices\n", w.SlicesSolved.Load())
		return
	case err != nil && !errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "bbworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("bbworker: stopped after %d slices\n", w.SlicesSolved.Load())
}
