// Command bbexp runs the paper's experiments and prints each figure as
// aligned tables (and optionally CSV).
//
// Usage:
//
//	bbexp [flags] [experiment ...]
//
// With no arguments, every experiment runs in presentation order:
// fig3a, fig3b, fig3c, disc-parallelism, disc-ccr, disc-upperbound,
// disc-memory, plus the registered extensions (fault-sweep, serve-sweep,
// dist-sweep).
//
//	-quick          reduced protocol (fixed few runs, for smoke tests)
//	-runs int       override the (minimum) number of runs per point
//	-maxruns int    override the adaptive run cap
//	-timeout dur    per-run search budget (default 10s)
//	-seed int       experiment seed (default 1997)
//	-procs string   comma-separated processor sweep (default "2,3,4")
//	-csv            print CSV blocks after each table
//	-journal path   crash-safe JSONL journal of completed sweep positions
//	-resume         resume from the journal instead of truncating it
//	-v              progress logging to stderr
//
// A run killed mid-sweep loses nothing: restart it with the same flags
// plus -resume and the journaled positions are served from disk, yielding
// byte-identical tables and CSV to an uninterrupted run.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
	_ "repro/internal/server" // registers the serve-sweep experiment
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "reduced protocol")
		runs    = flag.Int("runs", 0, "override runs per point")
		maxRuns = flag.Int("maxruns", 0, "override adaptive run cap")
		timeout = flag.Duration("timeout", 10*time.Second, "per-run search budget")
		seed    = flag.Int64("seed", 1997, "experiment seed")
		procs   = flag.String("procs", "2,3,4", "processor sweep")
		csv     = flag.Bool("csv", false, "print CSV blocks")
		journal = flag.String("journal", "", "crash-safe journal file (JSONL)")
		resume  = flag.Bool("resume", false, "resume from the journal")
		paired  = flag.String("paired", "", "print per-instance paired ratio stats for two series, e.g. \"S=LLB/S=LIFO\"")
		plotDir = flag.String("plot", "", "write an SVG plot per figure into this directory")
		dist    = flag.Bool("dist", false, "print per-variant vertex-count distributions (log-decade histograms)")
		verbose = flag.Bool("v", false, "progress logging")
	)
	flag.Parse()

	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	cfg.TimeLimit = *timeout
	cfg.Seed = *seed
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *maxRuns > 0 {
		cfg.MaxRuns = *maxRuns
	}
	if cfg.MaxRuns < cfg.Runs {
		cfg.MaxRuns = cfg.Runs
	}
	if *verbose {
		cfg.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var err error
	cfg.Procs, err = parseProcs(*procs)
	if err != nil {
		fatal(err)
	}
	if *resume && *journal == "" {
		fatal(fmt.Errorf("-resume needs -journal"))
	}
	if *journal != "" {
		j, err := exp.OpenJournal(*journal, *resume)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = j.Close() }()
		cfg.Journal = j
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.All()
	}
	for _, id := range ids {
		runner, err := exp.ByName(id)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		fig, err := runner(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(fig.Table())
		fmt.Printf("\n  (completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *csv {
			fmt.Println(fig.CSV())
		}
		if *paired != "" {
			printPaired(fig, *paired)
		}
		if *dist {
			for idx := 0; len(fig.Series) > 0 && idx < len(fig.Series[0].Points); idx++ {
				fmt.Println(fig.Distribution(idx))
			}
		}
		if *plotDir != "" {
			path := *plotDir + "/" + fig.ID + ".svg"
			if err := os.WriteFile(path, []byte(fig.PlotSVG()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}
}

// printPaired reports per-instance paired ratio statistics for "A/B":
// the fraction of contested instances (ratio != 1), and the geometric mean
// of the ratios over all and over contested instances only.
func printPaired(fig exp.Figure, spec string) {
	parts := strings.SplitN(spec, "/", 2)
	if len(parts) != 2 {
		fmt.Fprintf(os.Stderr, "bbexp: bad -paired spec %q (want \"A/B\")\n", spec)
		return
	}
	if len(fig.Series) == 0 {
		return
	}
	for idx := range fig.Series[0].Points {
		ratios, err := fig.PairedVertexRatios(parts[0], parts[1], idx)
		if err != nil {
			fmt.Printf("  paired %s x=%g: %v\n", spec, fig.Series[0].Points[idx].X, err)
			continue
		}
		var logAll, logCon float64
		var contested int
		for _, r := range ratios {
			logAll += math.Log(r)
			if r > 1.0001 || r < 0.9999 {
				contested++
				logCon += math.Log(r)
			}
		}
		gAll := math.Exp(logAll / float64(len(ratios)))
		gCon := 1.0
		if contested > 0 {
			gCon = math.Exp(logCon / float64(contested))
		}
		fmt.Printf("  paired %s x=%g: %d/%d contested, geo-mean ratio %.2f (all) %.2f (contested)\n",
			spec, fig.Series[0].Points[idx].X, contested, len(ratios), gAll, gCon)
	}
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		m, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, m)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bbexp:", err)
	os.Exit(1)
}
