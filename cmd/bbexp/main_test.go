package main

import "testing"

func TestParseProcs(t *testing.T) {
	got, err := parseProcs("2, 3,4")
	if err != nil || len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("parseProcs: %v %v", got, err)
	}
	for _, bad := range []string{"", "x", "2,,3"} {
		if _, err := parseProcs(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
