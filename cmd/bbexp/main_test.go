package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets tests re-exec this binary as bbexp itself: with
// BBEXP_BE_MAIN set, the test binary runs main() with its arguments.
func TestMain(m *testing.M) {
	if os.Getenv("BBEXP_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// bbexp runs the command with the given args and returns its stdout with
// the wall-clock timing lines stripped (everything else is deterministic).
func bbexp(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BBEXP_BE_MAIN=1")
	out, err := cmd.Output()
	var kept []string
	for _, line := range strings.Split(string(out), "\n") {
		if !strings.Contains(line, "completed in") {
			kept = append(kept, line)
		}
	}
	return strings.Join(kept, "\n"), err
}

// TestKillAndResume pins the crash-safety contract end to end: a run
// killed mid-sweep leaves a journal with complete positions plus a torn
// tail, and rerunning with -resume reproduces the aggregate output
// byte-for-byte.
func TestKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	// -timeout 0 keeps every recovery on the deterministic list path, so
	// recomputed positions match journaled ones exactly.
	flags := []string{"-quick", "-runs", "2", "-procs", "2", "-timeout", "0",
		"-seed", "7", "-csv", "-journal", journal}

	want, err := bbexp(t, append(flags, "fault-sweep")...)
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines, want one per sweep position", len(lines))
	}

	// "Kill" the run after two positions: two intact lines, one torn append.
	torn := lines[0] + lines[1] + `{"key":"pos[2]:`
	if err := os.WriteFile(journal, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := bbexp(t, append(flags, "-resume", "fault-sweep")...)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got != want {
		t.Fatalf("resumed output differs:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

func TestResumeNeedsJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if _, err := bbexp(t, "-resume", "fig3a"); err == nil {
		t.Fatal("-resume without -journal accepted")
	}
}

func TestParseProcs(t *testing.T) {
	got, err := parseProcs("2, 3,4")
	if err != nil || len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("parseProcs: %v %v", got, err)
	}
	for _, bad := range []string{"", "x", "2,,3"} {
		if _, err := parseProcs(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
