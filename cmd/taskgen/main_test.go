package main

import "testing"

func TestParseRange(t *testing.T) {
	lo, hi, err := parseRange("12:16")
	if err != nil || lo != 12 || hi != 16 {
		t.Fatalf("parseRange: %d %d %v", lo, hi, err)
	}
	for _, bad := range []string{"", "12", "12-16", "a:b"} {
		if _, _, err := parseRange(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
