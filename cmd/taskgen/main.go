// Command taskgen generates random task graphs per the paper's §4.1
// workload model and writes them as JSON (one file per graph, or stdout for
// a single graph).
//
// Usage:
//
//	taskgen [flags]
//
//	-n int          number of graphs to generate (default 1)
//	-seed int       RNG seed (default 1)
//	-out string     output file prefix; graph i goes to <prefix><i>.json.
//	                empty prefix with -n 1 writes to stdout
//	-tasks string   task count range "min:max" (default "12:16")
//	-depth string   graph depth range "min:max" (default "8:12")
//	-exec int       mean execution time (default 20)
//	-jitter float   relative execution/message jitter (default 0.99)
//	-ccr float      communication-to-computation ratio (default 1.0)
//	-laxity float   end-to-end laxity ratio for deadline slicing
//	                (default 1.5); 0 skips deadline assignment
//	-dot            also print the DOT rendering to stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/deadline"
	"repro/internal/gen"
	"repro/internal/taskgraph"
)

func parseRange(s string) (lo, hi int, err error) {
	if _, err = fmt.Sscanf(s, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("bad range %q (want \"min:max\")", s)
	}
	return lo, hi, nil
}

func main() {
	var (
		count   = flag.Int("n", 1, "number of graphs to generate")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("out", "", "output file prefix (stdout when empty and -n 1)")
		tasks   = flag.String("tasks", "12:16", "task count range min:max")
		depth   = flag.String("depth", "8:12", "graph depth range min:max")
		exec    = flag.Int64("exec", 20, "mean execution time")
		jitter  = flag.Float64("jitter", 0.99, "relative execution/message jitter")
		ccr     = flag.Float64("ccr", 1.0, "communication-to-computation ratio")
		laxity  = flag.Float64("laxity", 1.5, "laxity ratio (0 skips deadline assignment)")
		dot     = flag.Bool("dot", false, "also print DOT rendering to stderr")
		slicing = flag.String("slicing", "equal", "deadline slicing policy: equal, proportional")
		format  = flag.String("format", "json", "output format: json, stg")
	)
	flag.Parse()

	p := gen.Defaults()
	var err error
	if p.NMin, p.NMax, err = parseRange(*tasks); err != nil {
		fatal(err)
	}
	if p.DepthMin, p.DepthMax, err = parseRange(*depth); err != nil {
		fatal(err)
	}
	p.MeanExec = taskgraph.Time(*exec)
	p.ExecJitter = *jitter
	p.CCR = *ccr
	if *laxity > 0 {
		p.Laxity = *laxity
	}
	if err := p.Validate(); err != nil {
		fatal(err)
	}
	if *format != "json" && *format != "stg" {
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	var slicingPolicy deadline.Policy
	switch *slicing {
	case "equal":
		slicingPolicy = deadline.EqualSlack
	case "proportional":
		slicingPolicy = deadline.Proportional
	default:
		fatal(fmt.Errorf("unknown slicing policy %q", *slicing))
	}
	if *count > 1 && *out == "" {
		fatal(fmt.Errorf("-n %d requires -out prefix", *count))
	}

	g := gen.New(p, *seed)
	for i := 0; i < *count; i++ {
		tg := g.Graph()
		if *laxity > 0 {
			if err := deadline.Assign(tg, *laxity, slicingPolicy); err != nil {
				fatal(err)
			}
		}
		if *dot {
			fmt.Fprint(os.Stderr, tg.DOT())
		}
		if *out == "" {
			var err error
			if *format == "stg" {
				err = tg.WriteSTG(os.Stdout)
			} else {
				err = tg.WriteJSON(os.Stdout)
			}
			if err != nil {
				fatal(err)
			}
			continue
		}
		path := fmt.Sprintf("%s%d.%s", *out, i, *format)
		if err := tg.SaveFile(path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d tasks, %d arcs, depth %d, parallelism %.2f\n",
			path, tg.NumTasks(), tg.NumEdges(), tg.Depth(), tg.Parallelism())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskgen:", strings.TrimPrefix(err.Error(), "taskgen: "))
	os.Exit(1)
}
