// Command bbbench measures end-to-end solver throughput on a pinned set of
// workloads and emits machine-readable JSON, so two builds of the solver
// can be compared case by case. scripts/bench.sh uses it for the
// before/after perf gate: it builds this same source once against the
// pre-PR base commit and once against the working tree, runs both, and
// merges the two reports into BENCH_PR4.json.
//
// To make that possible bbbench restricts itself to the stable facade API
// (package repro) — no internal packages, no flags that only one side
// understands. Each case also records the optimal cost it found, so a
// merge fails loudly if an "optimization" changed any answer.
//
// The *-dedup cases re-run a pinned case with the transposition table on
// (Params.Dedup, set through reflection so this source still compiles
// against pre-knob facades — a base build without the field skips them).
// Their searched-vertex reduction, table hit-rate, and memory gauges are
// compared against the no-dedup twin *within the after report*, gated by
// -dedup-gate; a cost mismatch or a table over its byte budget fails the
// merge unconditionally.
//
// Modes:
//
//	bbbench -label after -commit <sha> -out after.json
//	bbbench -merge before.json,after.json -out BENCH_PR9.json \
//	        -gate lifo-df=2.0 -dedup-gate lifo-df-wide-dedup=10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"

	parabb "repro"
)

type benchCase struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	VerticesPerOp  float64 `json:"vertices_per_op"`
	VerticesPerSec float64 `json:"vertices_per_sec"`
	ExpandedPerOp  float64 `json:"expanded_per_op,omitempty"`
	Cost           int64   `json:"cost"`

	// Duplicate-detection gauges, present only on *-dedup cases (and only
	// from builds whose facade has the knob).
	DedupPrunedPerOp float64 `json:"dedup_pruned_per_op,omitempty"`
	TableHitRate     float64 `json:"table_hit_rate,omitempty"` // probe hits per generated vertex
	TableBytes       int64   `json:"table_bytes,omitempty"`
	TableBudget      int64   `json:"table_budget,omitempty"`
}

type report struct {
	Label  string      `json:"label"`
	Commit string      `json:"commit,omitempty"`
	GoOS   string      `json:"goos"`
	GoArch string      `json:"goarch"`
	Cases  []benchCase `json:"cases"`
}

type mergedCase struct {
	Name            string    `json:"name"`
	Before          benchCase `json:"before"`
	After           benchCase `json:"after"`
	SpeedupVertices float64   `json:"speedup_vertices_per_sec"`
	SpeedupWall     float64   `json:"speedup_wall"`
	AllocsSaved     int64     `json:"allocs_saved_per_op"`
	CostMatch       bool      `json:"cost_match"`
}

// dedupComparison pairs one *-dedup case with its no-dedup twin from the
// SAME (after) report: the base build may predate the knob entirely, so
// the duplicate-detection win is measured within one binary, not across
// the before/after pair.
type dedupComparison struct {
	Name             string  `json:"name"`     // the *-dedup case
	Baseline         string  `json:"baseline"` // its no-dedup twin
	ExpandedBaseline float64 `json:"expanded_baseline_per_op"`
	ExpandedDedup    float64 `json:"expanded_dedup_per_op"`
	Reduction        float64 `json:"searched_vertex_reduction"` // baseline / dedup expansions
	TableHitRate     float64 `json:"table_hit_rate"`
	CostMatch        bool    `json:"cost_match"`
	WithinBudget     bool    `json:"within_budget"`
}

type mergedReport struct {
	BeforeCommit string            `json:"before_commit,omitempty"`
	AfterCommit  string            `json:"after_commit,omitempty"`
	GoOS         string            `json:"goos"`
	GoArch       string            `json:"goarch"`
	Cases        []mergedCase      `json:"cases"`
	Dedup        []dedupComparison `json:"dedup,omitempty"`
}

// workload returns the named pinned instance. Shapes are chosen to cover
// the kernel's regimes: the paper's deep §4.1 graphs (long trails, wide
// cones) and a parallelism-rich wide graph (short trails, small cones).
func workload(name string) (*parabb.Graph, error) {
	p := parabb.DefaultWorkload()
	switch name {
	case "deep16":
		p.NMin, p.NMax = 16, 16
	case "wide24":
		p.NMin, p.NMax = 24, 24
		p.DepthMin, p.DepthMax = 4, 5
	case "wide14":
		// Wider still (14 tasks over 3–4 levels): large ready sets make
		// transposition duplicates — the same task set split across
		// processors in a different order — the dominant search cost.
		p.NMin, p.NMax = 14, 14
		p.DepthMin, p.DepthMax = 3, 4
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	return parabb.RandomWorkload(p, 53)
}

type solveCase struct {
	name     string
	workload string
	params   parabb.Params
	ida      bool
	dedup    bool
}

// cases is the pinned suite. lifo-df is the acceptance gate's benchmark.
// Each *-dedup case re-runs its no-dedup twin (same name minus the
// suffix) with the transposition table on; the merge step compares the
// two *within one report*, since a base build whose facade predates the
// knob skips them entirely.
var cases = []solveCase{
	{name: "lifo-df", workload: "deep16", params: parabb.Params{Branching: parabb.BranchDF}},
	{name: "lifo-df-wide", workload: "wide24", params: parabb.Params{Branching: parabb.BranchDF}},
	{name: "lifo-bfn", workload: "deep16", params: parabb.Params{}},
	{name: "llb", workload: "deep16", params: parabb.Params{Selection: parabb.SelectLLB}},
	{name: "ida-df", workload: "deep16", params: parabb.Params{Branching: parabb.BranchDF}, ida: true},
	{name: "lifo-bfn-wide", workload: "wide14", params: parabb.Params{}},
	{name: "lifo-df-wide-dedup", workload: "wide24", params: parabb.Params{Branching: parabb.BranchDF}, dedup: true},
	{name: "lifo-bfn-dedup", workload: "deep16", params: parabb.Params{}, dedup: true},
	{name: "lifo-bfn-wide-dedup", workload: "wide14", params: parabb.Params{}, dedup: true},
}

// setDedup turns on duplicate detection through reflection, so this one
// source file still compiles against facade revisions that predate the
// knob (scripts/bench.sh grafts it into the base worktree). A build whose
// Params has no Dedup field reports false and the caller skips the case.
func setDedup(p *parabb.Params) bool {
	f := reflect.ValueOf(p).Elem().FieldByName("Dedup")
	if !f.IsValid() || f.Kind() != reflect.Bool || !f.CanSet() {
		return false
	}
	f.SetBool(true)
	return true
}

// statInt reads one int64 counter from Stats by name, zero when the
// field does not exist in this build's facade.
func statInt(st parabb.Stats, name string) int64 {
	f := reflect.ValueOf(st).FieldByName(name)
	if !f.IsValid() || f.Kind() != reflect.Int64 {
		return 0
	}
	return f.Int()
}

func runSuite(label, commit string) (report, error) {
	rep := report{Label: label, Commit: commit, GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	plat := parabb.NewPlatform(3)
	for _, c := range cases {
		g, err := workload(c.workload)
		if err != nil {
			return report{}, err
		}
		params := c.params
		if c.dedup && !setDedup(&params) {
			fmt.Fprintf(os.Stderr, "%-18s skipped (this build's facade has no Dedup knob)\n", c.name)
			continue
		}
		var vertices, expanded, pruned, hits uint64
		var iters int
		var cost, tableBytes, tableBudget int64
		solveErr := error(nil)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			vertices, expanded, pruned, hits, iters = 0, 0, 0, 0, b.N
			for i := 0; i < b.N; i++ {
				var r parabb.Result
				var err error
				if c.ida {
					r, err = parabb.SolveIDA(g, plat, params)
				} else {
					r, err = parabb.Solve(g, plat, params)
				}
				if err != nil {
					solveErr = err
					b.FailNow()
				}
				vertices += uint64(r.Stats.Generated)
				expanded += uint64(r.Stats.Expanded)
				cost = int64(r.Cost)
				if c.dedup {
					pruned += uint64(statInt(r.Stats, "DedupPruned"))
					hits += uint64(statInt(r.Stats, "TableHits"))
					tableBytes = statInt(r.Stats, "TableBytesInUse")
					tableBudget = statInt(r.Stats, "TableBudget")
				}
			}
		})
		if solveErr != nil {
			return report{}, fmt.Errorf("case %s: %w", c.name, solveErr)
		}
		nsOp := float64(res.T.Nanoseconds()) / float64(res.N)
		bc := benchCase{
			Name:           c.name,
			NsPerOp:        nsOp,
			AllocsPerOp:    res.AllocsPerOp(),
			BytesPerOp:     res.AllocedBytesPerOp(),
			VerticesPerOp:  float64(vertices) / float64(iters),
			VerticesPerSec: float64(vertices) / res.T.Seconds(),
			ExpandedPerOp:  float64(expanded) / float64(iters),
			Cost:           cost,
		}
		if c.dedup {
			bc.DedupPrunedPerOp = float64(pruned) / float64(iters)
			if vertices > 0 {
				bc.TableHitRate = float64(hits) / float64(vertices)
			}
			bc.TableBytes = tableBytes
			bc.TableBudget = tableBudget
		}
		rep.Cases = append(rep.Cases, bc)
		fmt.Fprintf(os.Stderr, "%-18s %12.0f ns/op %10.0f vertices/s %8d allocs/op\n",
			c.name, nsOp, float64(vertices)/res.T.Seconds(), res.AllocsPerOp())
	}
	return rep, nil
}

func readReport(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// merge combines a before and an after report and enforces the gates.
// gates maps case name → minimum vertices/sec speedup; dedupGates maps a
// *-dedup case name → minimum searched-vertex reduction against its
// no-dedup twin in the after report.
func merge(beforePath, afterPath string, gates, dedupGates map[string]float64) (mergedReport, error) {
	before, err := readReport(beforePath)
	if err != nil {
		return mergedReport{}, err
	}
	after, err := readReport(afterPath)
	if err != nil {
		return mergedReport{}, err
	}
	byName := make(map[string]benchCase, len(before.Cases))
	for _, c := range before.Cases {
		byName[c.Name] = c
	}
	out := mergedReport{
		BeforeCommit: before.Commit, AfterCommit: after.Commit,
		GoOS: after.GoOS, GoArch: after.GoArch,
	}
	var failures []string
	for _, a := range after.Cases {
		b, ok := byName[a.Name]
		if !ok {
			continue // case absent in the base build
		}
		m := mergedCase{
			Name: a.Name, Before: b, After: a,
			SpeedupVertices: a.VerticesPerSec / b.VerticesPerSec,
			SpeedupWall:     b.NsPerOp / a.NsPerOp,
			AllocsSaved:     b.AllocsPerOp - a.AllocsPerOp,
			CostMatch:       a.Cost == b.Cost,
		}
		if !m.CostMatch {
			failures = append(failures, fmt.Sprintf("case %s: cost changed %d → %d", a.Name, b.Cost, a.Cost))
		}
		if min, gated := gates[a.Name]; gated && m.SpeedupVertices < min {
			failures = append(failures, fmt.Sprintf("case %s: %.2fx vertices/sec, gate requires %.2fx",
				a.Name, m.SpeedupVertices, min))
		}
		out.Cases = append(out.Cases, m)
	}

	// The dedup comparisons live entirely inside the after report.
	afterByName := make(map[string]benchCase, len(after.Cases))
	for _, c := range after.Cases {
		afterByName[c.Name] = c
	}
	for _, c := range after.Cases {
		base, isDedup := strings.CutSuffix(c.Name, "-dedup")
		if !isDedup {
			continue
		}
		twin, ok := afterByName[base]
		if !ok {
			failures = append(failures, fmt.Sprintf("dedup case %s: no-dedup twin %q missing", c.Name, base))
			continue
		}
		d := dedupComparison{
			Name: c.Name, Baseline: base,
			ExpandedBaseline: twin.ExpandedPerOp,
			ExpandedDedup:    c.ExpandedPerOp,
			TableHitRate:     c.TableHitRate,
			CostMatch:        c.Cost == twin.Cost,
			WithinBudget:     c.TableBytes <= c.TableBudget,
		}
		if c.ExpandedPerOp > 0 {
			d.Reduction = twin.ExpandedPerOp / c.ExpandedPerOp
		}
		if !d.CostMatch {
			failures = append(failures, fmt.Sprintf("dedup case %s: cost %d != twin %s cost %d",
				c.Name, c.Cost, base, twin.Cost))
		}
		if !d.WithinBudget {
			failures = append(failures, fmt.Sprintf("dedup case %s: table bytes %d over budget %d",
				c.Name, c.TableBytes, c.TableBudget))
		}
		if min, gated := dedupGates[c.Name]; gated && d.Reduction < min {
			failures = append(failures, fmt.Sprintf("dedup case %s: %.2fx searched-vertex reduction, gate requires %.2fx",
				c.Name, d.Reduction, min))
		}
		out.Dedup = append(out.Dedup, d)
	}
	for name := range dedupGates {
		if _, ok := afterByName[name]; !ok {
			failures = append(failures, fmt.Sprintf("dedup gate on %s, but the after report has no such case", name))
		}
	}

	if len(failures) > 0 {
		return out, fmt.Errorf("bench gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return out, nil
}

func parseGates(s string) (map[string]float64, error) {
	gates := make(map[string]float64)
	if s == "" {
		return gates, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad gate %q (want case=minSpeedup)", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad gate %q: %w", part, err)
		}
		gates[name] = f
	}
	return gates, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func main() {
	var (
		out       = flag.String("out", "-", "output path for the JSON report (- for stdout)")
		label     = flag.String("label", "run", "report label (e.g. before, after)")
		commit    = flag.String("commit", "", "commit hash to record in the report")
		mergeArg  = flag.String("merge", "", "merge mode: before.json,after.json")
		gatesArg  = flag.String("gate", "", "merge gates, e.g. lifo-df=2.0,llb=1.5")
		dedupArg  = flag.String("dedup-gate", "", "within-after dedup gates, e.g. lifo-df-wide-dedup=10")
		listCases = flag.Bool("list", false, "list case names and exit")
	)
	flag.Parse()

	if *listCases {
		for _, c := range cases {
			fmt.Println(c.name)
		}
		return
	}
	if *mergeArg != "" {
		beforePath, afterPath, ok := strings.Cut(*mergeArg, ",")
		if !ok {
			fmt.Fprintln(os.Stderr, "bbbench: -merge wants before.json,after.json")
			os.Exit(2)
		}
		gates, err := parseGates(*gatesArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", err)
			os.Exit(2)
		}
		dedupGates, err := parseGates(*dedupArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", err)
			os.Exit(2)
		}
		merged, err := merge(beforePath, afterPath, gates, dedupGates)
		if werr := writeJSON(*out, merged); werr != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", werr)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", err)
			os.Exit(1)
		}
		return
	}

	rep, err := runSuite(*label, *commit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbbench:", err)
		os.Exit(1)
	}
	if err := writeJSON(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "bbbench:", err)
		os.Exit(1)
	}
}
