// Command bbbench measures end-to-end solver throughput on a pinned set of
// workloads and emits machine-readable JSON, so two builds of the solver
// can be compared case by case. scripts/bench.sh uses it for the
// before/after perf gate: it builds this same source once against the
// pre-PR base commit and once against the working tree, runs both, and
// merges the two reports into BENCH_PR4.json.
//
// To make that possible bbbench restricts itself to the stable facade API
// (package repro) — no internal packages, no flags that only one side
// understands. Each case also records the optimal cost it found, so a
// merge fails loudly if an "optimization" changed any answer.
//
// Modes:
//
//	bbbench -label after -commit <sha> -out after.json
//	bbbench -merge before.json,after.json -out BENCH_PR4.json \
//	        -gate lifo-df=2.0
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	parabb "repro"
)

type benchCase struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	VerticesPerOp  float64 `json:"vertices_per_op"`
	VerticesPerSec float64 `json:"vertices_per_sec"`
	Cost           int64   `json:"cost"`
}

type report struct {
	Label  string      `json:"label"`
	Commit string      `json:"commit,omitempty"`
	GoOS   string      `json:"goos"`
	GoArch string      `json:"goarch"`
	Cases  []benchCase `json:"cases"`
}

type mergedCase struct {
	Name            string    `json:"name"`
	Before          benchCase `json:"before"`
	After           benchCase `json:"after"`
	SpeedupVertices float64   `json:"speedup_vertices_per_sec"`
	SpeedupWall     float64   `json:"speedup_wall"`
	AllocsSaved     int64     `json:"allocs_saved_per_op"`
	CostMatch       bool      `json:"cost_match"`
}

type mergedReport struct {
	BeforeCommit string       `json:"before_commit,omitempty"`
	AfterCommit  string       `json:"after_commit,omitempty"`
	GoOS         string       `json:"goos"`
	GoArch       string       `json:"goarch"`
	Cases        []mergedCase `json:"cases"`
}

// workload returns the named pinned instance. Shapes are chosen to cover
// the kernel's regimes: the paper's deep §4.1 graphs (long trails, wide
// cones) and a parallelism-rich wide graph (short trails, small cones).
func workload(name string) (*parabb.Graph, error) {
	p := parabb.DefaultWorkload()
	switch name {
	case "deep16":
		p.NMin, p.NMax = 16, 16
	case "wide24":
		p.NMin, p.NMax = 24, 24
		p.DepthMin, p.DepthMax = 4, 5
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	return parabb.RandomWorkload(p, 53)
}

type solveCase struct {
	name     string
	workload string
	params   parabb.Params
	ida      bool
}

// cases is the pinned suite. lifo-df is the acceptance gate's benchmark.
var cases = []solveCase{
	{name: "lifo-df", workload: "deep16", params: parabb.Params{Branching: parabb.BranchDF}},
	{name: "lifo-df-wide", workload: "wide24", params: parabb.Params{Branching: parabb.BranchDF}},
	{name: "lifo-bfn", workload: "deep16", params: parabb.Params{}},
	{name: "llb", workload: "deep16", params: parabb.Params{Selection: parabb.SelectLLB}},
	{name: "ida-df", workload: "deep16", params: parabb.Params{Branching: parabb.BranchDF}, ida: true},
}

func runSuite(label, commit string) (report, error) {
	rep := report{Label: label, Commit: commit, GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	plat := parabb.NewPlatform(3)
	for _, c := range cases {
		g, err := workload(c.workload)
		if err != nil {
			return report{}, err
		}
		var vertices uint64
		var iters int
		var cost int64
		solveErr := error(nil)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			vertices, iters = 0, b.N
			for i := 0; i < b.N; i++ {
				var r parabb.Result
				var err error
				if c.ida {
					r, err = parabb.SolveIDA(g, plat, c.params)
				} else {
					r, err = parabb.Solve(g, plat, c.params)
				}
				if err != nil {
					solveErr = err
					b.FailNow()
				}
				vertices += uint64(r.Stats.Generated)
				cost = int64(r.Cost)
			}
		})
		if solveErr != nil {
			return report{}, fmt.Errorf("case %s: %w", c.name, solveErr)
		}
		nsOp := float64(res.T.Nanoseconds()) / float64(res.N)
		rep.Cases = append(rep.Cases, benchCase{
			Name:           c.name,
			NsPerOp:        nsOp,
			AllocsPerOp:    res.AllocsPerOp(),
			BytesPerOp:     res.AllocedBytesPerOp(),
			VerticesPerOp:  float64(vertices) / float64(iters),
			VerticesPerSec: float64(vertices) / res.T.Seconds(),
			Cost:           cost,
		})
		fmt.Fprintf(os.Stderr, "%-14s %12.0f ns/op %10.0f vertices/s %8d allocs/op\n",
			c.name, nsOp, float64(vertices)/res.T.Seconds(), res.AllocsPerOp())
	}
	return rep, nil
}

func readReport(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// merge combines a before and an after report and enforces the gates.
// gates maps case name → minimum vertices/sec speedup.
func merge(beforePath, afterPath string, gates map[string]float64) (mergedReport, error) {
	before, err := readReport(beforePath)
	if err != nil {
		return mergedReport{}, err
	}
	after, err := readReport(afterPath)
	if err != nil {
		return mergedReport{}, err
	}
	byName := make(map[string]benchCase, len(before.Cases))
	for _, c := range before.Cases {
		byName[c.Name] = c
	}
	out := mergedReport{
		BeforeCommit: before.Commit, AfterCommit: after.Commit,
		GoOS: after.GoOS, GoArch: after.GoArch,
	}
	var failures []string
	for _, a := range after.Cases {
		b, ok := byName[a.Name]
		if !ok {
			continue // case absent in the base build
		}
		m := mergedCase{
			Name: a.Name, Before: b, After: a,
			SpeedupVertices: a.VerticesPerSec / b.VerticesPerSec,
			SpeedupWall:     b.NsPerOp / a.NsPerOp,
			AllocsSaved:     b.AllocsPerOp - a.AllocsPerOp,
			CostMatch:       a.Cost == b.Cost,
		}
		if !m.CostMatch {
			failures = append(failures, fmt.Sprintf("case %s: cost changed %d → %d", a.Name, b.Cost, a.Cost))
		}
		if min, gated := gates[a.Name]; gated && m.SpeedupVertices < min {
			failures = append(failures, fmt.Sprintf("case %s: %.2fx vertices/sec, gate requires %.2fx",
				a.Name, m.SpeedupVertices, min))
		}
		out.Cases = append(out.Cases, m)
	}
	if len(failures) > 0 {
		return out, fmt.Errorf("bench gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return out, nil
}

func parseGates(s string) (map[string]float64, error) {
	gates := make(map[string]float64)
	if s == "" {
		return gates, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad gate %q (want case=minSpeedup)", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad gate %q: %w", part, err)
		}
		gates[name] = f
	}
	return gates, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func main() {
	var (
		out       = flag.String("out", "-", "output path for the JSON report (- for stdout)")
		label     = flag.String("label", "run", "report label (e.g. before, after)")
		commit    = flag.String("commit", "", "commit hash to record in the report")
		mergeArg  = flag.String("merge", "", "merge mode: before.json,after.json")
		gatesArg  = flag.String("gate", "", "merge gates, e.g. lifo-df=2.0,llb=1.5")
		listCases = flag.Bool("list", false, "list case names and exit")
	)
	flag.Parse()

	if *listCases {
		for _, c := range cases {
			fmt.Println(c.name)
		}
		return
	}
	if *mergeArg != "" {
		beforePath, afterPath, ok := strings.Cut(*mergeArg, ",")
		if !ok {
			fmt.Fprintln(os.Stderr, "bbbench: -merge wants before.json,after.json")
			os.Exit(2)
		}
		gates, err := parseGates(*gatesArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", err)
			os.Exit(2)
		}
		merged, err := merge(beforePath, afterPath, gates)
		if werr := writeJSON(*out, merged); werr != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", werr)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", err)
			os.Exit(1)
		}
		return
	}

	rep, err := runSuite(*label, *commit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbbench:", err)
		os.Exit(1)
	}
	if err := writeJSON(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "bbbench:", err)
		os.Exit(1)
	}
}
