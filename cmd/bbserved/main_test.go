package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/deadline"
	"repro/internal/gen"
	"repro/internal/listsched"
	"repro/internal/platform"
	"repro/internal/server"
	"repro/internal/taskgraph"
)

// TestMain lets tests re-exec this binary as bbserved itself: with
// BBSERVED_BE_MAIN set, the test binary runs main() with its arguments.
func TestMain(m *testing.M) {
	if os.Getenv("BBSERVED_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func testGraph(t *testing.T, seed int64) *taskgraph.Graph {
	t.Helper()
	p := gen.Defaults()
	g := gen.New(p, seed).Graph()
	if err := deadline.Assign(g, p.Laxity, deadline.EqualSlack); err != nil {
		t.Fatalf("deadline.Assign: %v", err)
	}
	return g
}

func post(t *testing.T, base, path string, payload any) *http.Response {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close body: %v", err)
	}
	return resp
}

// TestDaemonLifecycle is the end-to-end CLI test: bbserved on a random
// port, one request per endpoint, then a clean SIGTERM shutdown with zero
// leaked goroutines.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-budget", "2s")
	cmd.Env = append(os.Environ(), "BBSERVED_BE_MAIN=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill() //bbvet:ignore errcheck — belt and braces on failure paths
	}()

	// The first line announces the bound address.
	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		t.Fatalf("no startup line: %v", scanner.Err())
	}
	first := scanner.Text()
	const marker = "listening on "
	i := strings.Index(first, marker)
	if i < 0 {
		t.Fatalf("startup line %q lacks %q", first, marker)
	}
	base := "http://" + strings.TrimSpace(first[i+len(marker):])

	// Drain the rest of stdout in the background for the shutdown report.
	rest := make(chan string, 1)
	go func() {
		var sb strings.Builder
		for scanner.Scan() {
			sb.WriteString(scanner.Text())
			sb.WriteString("\n")
		}
		rest <- sb.String()
	}()

	g := testGraph(t, 42)
	gr := server.GraphRequest{Graph: g, Procs: 4}
	plat := platform.New(4)
	static, err := listsched.Best(g, plat)
	if err != nil {
		t.Fatal(err)
	}

	endpoints := []struct {
		path    string
		payload any
	}{
		{"/v1/solve", server.SolveRequest{GraphRequest: gr, BudgetMS: 2000}},
		{"/v1/anytime", server.AnytimeRequest{GraphRequest: gr, BudgetMS: 1000}},
		{"/v1/list", server.ListRequest{GraphRequest: gr, Policy: "edf"}},
		{"/v1/analyze", server.AnalyzeRequest{GraphRequest: gr}},
		{"/v1/recover", server.RecoverRequest{
			GraphRequest: gr,
			Schedule:     static.Schedule.Placements(),
			Faults: []server.FaultSpec{{
				Kind: "proc-failure", Proc: 0, At: static.Schedule.Makespan() / 2,
			}},
			BudgetMS: 1000,
		}},
	}
	for _, ep := range endpoints {
		resp := post(t, base, ep.path, ep.payload)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", ep.path, resp.StatusCode)
		}
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	// SIGTERM: the daemon drains and exits 0 with no leaked goroutines.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Read stdout to EOF before reaping: cmd.Wait closes the pipe and
	// would race the scanner goroutine out of the final shutdown lines.
	var tail string
	select {
	case tail = <-rest:
	case <-time.After(30 * time.Second):
		t.Fatalf("bbserved did not exit after SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("bbserved exited non-zero: %v", err)
	}
	if !strings.Contains(tail, "draining") {
		t.Errorf("shutdown output lacks drain announcement:\n%s", tail)
	}
	if !strings.Contains(tail, fmt.Sprintf("%d leaked goroutines", 0)) {
		t.Errorf("shutdown output lacks zero-leak report:\n%s", tail)
	}
}

// TestBadFlags: trailing arguments are a usage error.
func TestBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	cmd := exec.Command(os.Args[0], "nonsense")
	cmd.Env = append(os.Environ(), "BBSERVED_BE_MAIN=1")
	if err := cmd.Run(); err == nil {
		t.Fatalf("bbserved accepted positional arguments")
	}
}

// TestGridFlagValidation: -advertise without -peers and malformed
// -tenants specs are usage errors, not silent misconfigurations.
func TestGridFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	for _, args := range [][]string{
		{"-advertise", "http://127.0.0.1:9"},
		{"-tenants", "gold:-1"},
		{"-tenants", "gold:2,gold:1"},
	} {
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "BBSERVED_BE_MAIN=1")
		if err := cmd.Run(); err == nil {
			t.Errorf("bbserved accepted %q", args)
		}
	}
}

// replicaProc is one re-exec'd bbserved under test.
type replicaProc struct {
	cmd  *exec.Cmd
	base string
	rest chan string
}

// startReplica launches bbserved on addr with the given extra flags and
// waits for its listening announcement.
func startReplica(t *testing.T, addr string, extra ...string) *replicaProc {
	t.Helper()
	args := append([]string{"-addr", addr, "-budget", "2s"}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BBSERVED_BE_MAIN=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill() //bbvet:ignore errcheck — belt and braces on failure paths
	})
	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		t.Fatalf("no startup line: %v", scanner.Err())
	}
	first := scanner.Text()
	const marker = "listening on "
	i := strings.Index(first, marker)
	if i < 0 {
		t.Fatalf("startup line %q lacks %q", first, marker)
	}
	r := &replicaProc{
		cmd:  cmd,
		base: "http://" + strings.TrimSpace(first[i+len(marker):]),
		rest: make(chan string, 1),
	}
	go func() {
		var sb strings.Builder
		for scanner.Scan() {
			sb.WriteString(scanner.Text())
			sb.WriteString("\n")
		}
		r.rest <- sb.String()
	}()
	return r
}

// shutdown SIGTERMs the replica and asserts a clean zero-leak exit. The
// output is drained to EOF before Wait: Wait closes the pipe and would
// race the reader out of the report's tail lines.
func (r *replicaProc) shutdown(t *testing.T) {
	t.Helper()
	if err := r.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var tail string
	select {
	case tail = <-r.rest:
	case <-time.After(30 * time.Second):
		t.Fatalf("replica %s did not exit after SIGTERM", r.base)
	}
	if err := r.cmd.Wait(); err != nil {
		t.Fatalf("replica %s exited non-zero: %v\n%s", r.base, err, tail)
	}
	if !strings.Contains(tail, "0 leaked goroutines") {
		t.Errorf("replica %s shutdown output lacks zero-leak report:\n%s", r.base, tail)
	}
}

// reservePorts grabs n distinct loopback ports and releases them for the
// child processes to rebind (the usual small-race port-reservation
// trick; the window is tiny and the test is loopback-only).
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	return addrs
}

// postTenant posts a payload with an X-Tenant header and returns the
// response (body closed), for asserting status and cache headers.
func postTenant(t *testing.T, base, path, tenant string, payload any) *http.Response {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close body: %v", err)
	}
	return resp
}

// TestGridReplicaLifecycle is the CLI-level grid e2e: two peered
// bbserved processes with tenant classes, a solve on replica 1, the
// same solve served from cache (local or peer fill) by replica 2,
// tenant admission visible in /metrics, and clean zero-leak shutdowns
// on both.
func TestGridReplicaLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	addrs := reservePorts(t, 2)
	url0, url1 := "http://"+addrs[0], "http://"+addrs[1]
	r0 := startReplica(t, addrs[0], "-peers", url1, "-advertise", url0, "-tenants", "gold:2,free:1")
	r1 := startReplica(t, addrs[1], "-peers", url0, "-advertise", url1, "-tenants", "gold:2,free:1")

	g := testGraph(t, 1997)
	payload := server.SolveRequest{
		GraphRequest: server.GraphRequest{Graph: g, Procs: 4},
		BudgetMS:     2000,
	}
	if resp := postTenant(t, r0.base, "/v1/solve", "gold", payload); resp.StatusCode != http.StatusOK {
		t.Fatalf("replica 0 solve: status %d", resp.StatusCode)
	}
	// Replica 1 must serve the same request without a fresh solve once
	// the grid settles: either the key's ring owner already has the body
	// (X-Cache: peer on the fetch path) or the fill-back landed locally
	// (X-Cache: hit). A first miss can race the async fill-back, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := postTenant(t, r1.base, "/v1/solve", "free", payload)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica 1 solve: status %d", resp.StatusCode)
		}
		if xc := resp.Header.Get("X-Cache"); xc == "hit" || xc == "peer" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 1 never served the solve from cache")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if resp := postTenant(t, r0.base, "/v1/solve", "nosuch", payload); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tenant: status %d, want 400", resp.StatusCode)
	}

	resp, err := http.Get(r0.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var ms struct {
		Tenants []struct {
			Name   string `json:"name"`
			Served int64  `json:"served"`
		} `json:"tenants"`
		Grid map[string]any `json:"grid"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if ms.Grid == nil {
		t.Errorf("replica 0 metrics lack the grid block")
	}
	foundGold := false
	for _, ten := range ms.Tenants {
		if ten.Name == "gold" && ten.Served >= 1 {
			foundGold = true
		}
	}
	if !foundGold {
		t.Errorf("replica 0 metrics lack gold tenant accounting: %+v", ms.Tenants)
	}

	r0.shutdown(t)
	r1.shutdown(t)
}
