package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/deadline"
	"repro/internal/gen"
	"repro/internal/listsched"
	"repro/internal/platform"
	"repro/internal/server"
	"repro/internal/taskgraph"
)

// TestMain lets tests re-exec this binary as bbserved itself: with
// BBSERVED_BE_MAIN set, the test binary runs main() with its arguments.
func TestMain(m *testing.M) {
	if os.Getenv("BBSERVED_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func testGraph(t *testing.T, seed int64) *taskgraph.Graph {
	t.Helper()
	p := gen.Defaults()
	g := gen.New(p, seed).Graph()
	if err := deadline.Assign(g, p.Laxity, deadline.EqualSlack); err != nil {
		t.Fatalf("deadline.Assign: %v", err)
	}
	return g
}

func post(t *testing.T, base, path string, payload any) *http.Response {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close body: %v", err)
	}
	return resp
}

// TestDaemonLifecycle is the end-to-end CLI test: bbserved on a random
// port, one request per endpoint, then a clean SIGTERM shutdown with zero
// leaked goroutines.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-budget", "2s")
	cmd.Env = append(os.Environ(), "BBSERVED_BE_MAIN=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill() //bbvet:ignore errcheck — belt and braces on failure paths
	}()

	// The first line announces the bound address.
	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		t.Fatalf("no startup line: %v", scanner.Err())
	}
	first := scanner.Text()
	const marker = "listening on "
	i := strings.Index(first, marker)
	if i < 0 {
		t.Fatalf("startup line %q lacks %q", first, marker)
	}
	base := "http://" + strings.TrimSpace(first[i+len(marker):])

	// Drain the rest of stdout in the background for the shutdown report.
	rest := make(chan string, 1)
	go func() {
		var sb strings.Builder
		for scanner.Scan() {
			sb.WriteString(scanner.Text())
			sb.WriteString("\n")
		}
		rest <- sb.String()
	}()

	g := testGraph(t, 42)
	gr := server.GraphRequest{Graph: g, Procs: 4}
	plat := platform.New(4)
	static, err := listsched.Best(g, plat)
	if err != nil {
		t.Fatal(err)
	}

	endpoints := []struct {
		path    string
		payload any
	}{
		{"/v1/solve", server.SolveRequest{GraphRequest: gr, BudgetMS: 2000}},
		{"/v1/anytime", server.AnytimeRequest{GraphRequest: gr, BudgetMS: 1000}},
		{"/v1/list", server.ListRequest{GraphRequest: gr, Policy: "edf"}},
		{"/v1/analyze", server.AnalyzeRequest{GraphRequest: gr}},
		{"/v1/recover", server.RecoverRequest{
			GraphRequest: gr,
			Schedule:     static.Schedule.Placements(),
			Faults: []server.FaultSpec{{
				Kind: "proc-failure", Proc: 0, At: static.Schedule.Makespan() / 2,
			}},
			BudgetMS: 1000,
		}},
	}
	for _, ep := range endpoints {
		resp := post(t, base, ep.path, ep.payload)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", ep.path, resp.StatusCode)
		}
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	// SIGTERM: the daemon drains and exits 0 with no leaked goroutines.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("bbserved exited non-zero: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("bbserved did not exit after SIGTERM")
	}
	tail := <-rest
	if !strings.Contains(tail, "draining") {
		t.Errorf("shutdown output lacks drain announcement:\n%s", tail)
	}
	if !strings.Contains(tail, fmt.Sprintf("%d leaked goroutines", 0)) {
		t.Errorf("shutdown output lacks zero-leak report:\n%s", tail)
	}
}

// TestBadFlags: trailing arguments are a usage error.
func TestBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	cmd := exec.Command(os.Args[0], "nonsense")
	cmd.Env = append(os.Environ(), "BBSERVED_BE_MAIN=1")
	if err := cmd.Run(); err == nil {
		t.Fatalf("bbserved accepted positional arguments")
	}
}
