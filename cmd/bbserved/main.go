// Command bbserved is the scheduling daemon: it serves the repository's
// solvers — exact B&B, the anytime portfolio, list scheduling, workload
// analysis, and fault recovery — as a JSON HTTP API with result caching,
// admission control, and graceful drain.
//
// Usage:
//
//	bbserved [flags]
//
//	-addr string      listen address (default "127.0.0.1:8080"; :0 picks a port)
//	-workers int      concurrent solves (default GOMAXPROCS)
//	-queue int        admission queue depth (default 64)
//	-cache int        result-cache entries (default 4096; -1 disables)
//	-budget dur       default per-request solve budget (default 5s)
//	-max-budget dur   clamp for client-requested budgets (default 60s)
//	-drain dur        shutdown grace period (default 30s)
//	-distributed      act as a B&B fabric coordinator (see below)
//	-frontier int     frontier slices per distributed solve (default 64)
//	-lease-ttl dur    worker lease/heartbeat deadline (default 3s)
//	-journal string   durable checkpoint journal for distributed solves
//	-peers urls       comma-separated base URLs of the other replicas (cache grid)
//	-advertise url    this replica's base URL on the ring (default http://<listen addr>)
//	-tenants spec     admission classes: name[:weight[:queuecap]],... (weighted fair queueing)
//	-v                per-request logging to stderr
//
// Endpoints: POST /v1/{solve,anytime,list,analyze,recover,batch}, GET
// /healthz, GET /metrics. With -distributed the worker-facing fabric API
// is mounted under POST /dist/v1/ — point bbworker processes at this
// address — and solve requests carrying "distributed": true are sharded
// across the fleet instead of solved in-process.
//
// With -peers the daemon joins a replica cache grid: the canonical
// cache-key space is consistent-hashed across the fleet, each key's ring
// owner serves read-through gets with a single-flight fill claim (an
// isomorphism class is solved once fleet-wide), and replicas that solve
// on an owner's behalf fill the result back. The peer API is mounted
// under POST /grid/v1/. Every replica must be started with the same
// member set (its own -advertise URL plus the -peers list). With
// -tenants, requests carrying an X-Tenant header are admitted through
// per-tenant queues under weighted fair queueing instead of one global
// queue; each tenant's 429 Retry-After tracks its live backlog and
// service rate.
//
// With -journal every distributed solve checkpoints its frontier,
// incumbents, and slice completions to an fsynced JSONL file. If the
// journal already holds an unfinished solve at startup — the previous
// coordinator was killed mid-search — bbserved resumes it in the
// background: unfinished slices are re-leased to whatever workers join,
// and the completed result (identical cost and optimality proof) is
// logged. SIGINT/SIGTERM drains: the listener closes, in-flight solves
// finish (or hit their budgets), queued work is released with 503, an
// in-progress resume is checkpointed and canceled, and the process exits
// 0 after reporting leaked goroutines (a healthy shutdown reports zero).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers     = flag.Int("workers", 0, "concurrent solves (default GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "admission queue depth")
		cache       = flag.Int("cache", 0, "result-cache entries (-1 disables)")
		budget      = flag.Duration("budget", 0, "default per-request solve budget")
		maxBudget   = flag.Duration("max-budget", 0, "clamp for client-requested budgets")
		drain       = flag.Duration("drain", 30*time.Second, "shutdown grace period")
		distributed = flag.Bool("distributed", false, "act as a distributed B&B coordinator")
		frontier    = flag.Int("frontier", 0, "frontier slices per distributed solve (default 64)")
		leaseTTL    = flag.Duration("lease-ttl", 0, "worker lease/heartbeat deadline (default 3s)")
		journalPath = flag.String("journal", "", "durable checkpoint journal for distributed solves")
		peers       = flag.String("peers", "", "comma-separated base URLs of the other cache-grid replicas")
		advertise   = flag.String("advertise", "", "this replica's base URL on the ring (default http://<listen addr>)")
		tenants     = flag.String("tenants", "", "admission classes: name[:weight[:queuecap]],...")
		verbose     = flag.Bool("v", false, "per-request logging")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "bbserved: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	cfg := server.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheEntries:  *cache,
		DefaultBudget: *budget,
		MaxBudget:     *maxBudget,
	}
	if *verbose {
		cfg.Logf = log.New(os.Stderr, "bbserved: ", log.LstdFlags).Printf
	}
	ts, err := grid.ParseTenants(*tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbserved: %v\n", err)
		os.Exit(2)
	}
	cfg.Tenants = ts
	if *advertise != "" && *peers == "" {
		fmt.Fprintln(os.Stderr, "bbserved: -advertise requires -peers")
		os.Exit(2)
	}
	var fleet *dist.Fleet
	if *distributed {
		fleet = dist.NewFleet(dist.Config{
			FrontierTarget: *frontier,
			LeaseTTL:       *leaseTTL,
			JournalPath:    *journalPath,
			Logf:           cfg.Logf,
		})
		cfg.Fleet = fleet
	} else if *frontier != 0 || *leaseTTL != 0 || *journalPath != "" {
		fmt.Fprintln(os.Stderr, "bbserved: -frontier, -lease-ttl and -journal require -distributed")
		os.Exit(2)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	// The goroutine baseline for the shutdown leak report: taken after
	// signal.Notify (whose watcher goroutine is process-lifetime) and
	// before any serving machinery starts.
	baseline := runtime.NumGoroutine()

	// The listener comes up before the server so a grid replica knows its
	// ring identity: with -peers and no -advertise, the bound address is
	// the advertised self URL.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbserved: %v\n", err)
		os.Exit(1)
	}
	var node *grid.Node
	if *peers != "" {
		self := *advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		node = grid.NewNode(grid.NodeConfig{
			Self:  self,
			Peers: splitList(*peers),
			Logf:  cfg.Logf,
		})
		cfg.Grid = node
	}

	srv := server.New(cfg)
	fmt.Printf("bbserved: listening on %s\n", ln.Addr())
	if *distributed {
		fmt.Printf("bbserved: coordinating a worker fleet: bbworker -coordinator http://%s\n", ln.Addr())
	}
	if node != nil {
		fmt.Printf("bbserved: cache-grid replica %s, %d configured peers\n", node.Self(), len(splitList(*peers)))
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// A non-empty journal means the previous coordinator died (or was
	// drained) mid-solve: adopt it in the background so rejoining workers
	// can finish the search. The resume runs under its own context — on
	// shutdown it is canceled, which checkpoints a final record and keeps
	// the journal resumable by the next coordinator.
	resumeDone := make(chan struct{})
	close(resumeDone)
	var resumeCancel context.CancelFunc
	if fleet != nil && *journalPath != "" {
		if st, err := os.Stat(*journalPath); err == nil && st.Size() > 0 {
			var rctx context.Context
			rctx, resumeCancel = context.WithCancel(context.Background())
			resumeDone = make(chan struct{})
			fmt.Printf("bbserved: resuming journaled solve from %s\n", *journalPath)
			go func() {
				defer close(resumeDone)
				res, err := fleet.Resume(rctx)
				switch {
				case err == nil:
					fmt.Printf("bbserved: resumed solve finished: cost=%d optimal=%v reason=%v\n",
						res.Cost, res.Optimal, res.Reason)
				case errors.Is(err, dist.ErrResumable):
					fmt.Printf("bbserved: resumed solve interrupted again, journal stays resumable: %v\n", err)
				default:
					fmt.Fprintf(os.Stderr, "bbserved: resume: %v\n", err)
				}
			}()
		}
	}

	select {
	case sig := <-sigs:
		fmt.Printf("bbserved: %s: draining\n", sig)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "bbserved: serve: %v\n", err)
		os.Exit(1)
	}

	// Drain order: stop the background resume first (it checkpoints and
	// returns), then stop admitting (queued waiters get 503, new requests
	// too), then let the HTTP layer wait for in-flight responses.
	if resumeCancel != nil {
		resumeCancel()
	}
	<-resumeDone
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	err = hs.Shutdown(ctx)
	cancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbserved: shutdown: %v\n", err)
	}
	srv.Close()
	if node != nil {
		node.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "bbserved: serve: %v\n", err)
	}

	// Leak report: give runtime goroutines a moment to unwind, then
	// compare against the pre-serve baseline.
	leaked := runtime.NumGoroutine() - baseline
	for end := time.Now().Add(2 * time.Second); leaked > 0 && time.Now().Before(end); {
		time.Sleep(10 * time.Millisecond)
		leaked = runtime.NumGoroutine() - baseline
	}
	if leaked < 0 {
		leaked = 0
	}
	fmt.Printf("bbserved: shutdown complete, %d leaked goroutines\n", leaked)
	if leaked > 0 {
		os.Exit(1)
	}
}

// splitList splits a comma-separated flag into trimmed non-empty entries.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}
