// Package parabb is a production-quality Go implementation of the
// parametrized branch-and-bound multiprocessor scheduler of
//
//	Jan Jonsson and Kang G. Shin, "A Parametrized Branch-and-Bound
//	Strategy for Scheduling Precedence-Constrained Tasks on a
//	Multiprocessor System", Proc. ICPP 1997, pp. 158–165.
//
// The library schedules precedence-constrained real-time tasks
// non-preemptively on a homogeneous shared-bus multiprocessor so that the
// maximum task lateness Lmax = max{f_i − D_i} is minimized, and reproduces
// the paper's entire experimental evaluation.
//
// # Quick start
//
//	g := parabb.NewGraph(3)
//	a := g.AddTask(parabb.Task{Name: "sense", Exec: 4, Deadline: 20})
//	b := g.AddTask(parabb.Task{Name: "plan", Exec: 7, Deadline: 30})
//	c := g.AddTask(parabb.Task{Name: "act", Exec: 3, Deadline: 40})
//	g.MustAddEdge(a, b, 2) // 2 data items from sense to plan
//	g.MustAddEdge(b, c, 1)
//
//	res, err := parabb.Solve(g, parabb.NewPlatform(2), parabb.Params{})
//	if err != nil { ... }
//	fmt.Println(res.Cost)          // optimal maximum lateness
//	fmt.Print(parabb.GanttText(res.Schedule, 72))
//
// The zero Params value is the paper's recommended exact configuration:
// LIFO vertex selection, BFn branching, the contention-aware lower bound
// LB1, an EDF-seeded upper bound, and BR = 0 (proven optimum). Every knob
// of the Kohler–Steiglitz 9-tuple ⟨B,S,E,F,D,L,U,BR,RB⟩ is a field of
// Params; see the package documentation of repro/internal/core for the
// full taxonomy.
//
// # Package map
//
//	internal/taskgraph  task/DAG model, analyses, codecs
//	internal/platform   processors + shared-bus communication model
//	internal/gen        the paper's §4.1 random workload generator
//	internal/deadline   the §4.2 end-to-end deadline slicing
//	internal/sched      the §4.3 non-preemptive scheduling operation
//	internal/edf        the §4.4 greedy EDF baseline
//	internal/core       the parametrized B&B (sequential and parallel)
//	internal/bruteforce exhaustive search (test oracle and baseline)
//	internal/periodic   hyperperiod unrolling for periodic task systems
//	internal/exp        experiment harness regenerating every figure
//	internal/stats      confidence intervals, the §5 stop rule
//	internal/gantt      text/SVG/JSON schedule rendering
//
// This facade re-exports the stable surface of those packages so that
// downstream users import a single path.
package parabb
