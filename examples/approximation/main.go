// Approximation: the practical engineering question behind the paper's
// contribution C3 — how much schedule quality do you give up, and how much
// search do you save, when you cannot afford the exact algorithm?
//
// The program draws paper-style random workloads and runs the whole
// strategy ladder on each: exact BFn, near-optimal BFn with BR=10%
// (bounded suboptimality), the fixed-order approximations DF and BF1, the
// parallel exact solver, and greedy EDF. It then prints the aggregate
// quality/effort trade-off.
//
//	go run ./examples/approximation
package main

import (
	"fmt"
	"log"
	"time"

	parabb "repro"
)

type rung struct {
	name   string
	params parabb.Params
	par    bool
}

func main() {
	ladder := []rung{
		{name: "BFn BR=0% (optimal)", params: parabb.Params{}},
		{name: "BFn BR=0% (parallel x4)", params: parabb.Params{}, par: true},
		{name: "BFn BR=10% (guaranteed)", params: parabb.Params{BR: 0.10}},
		{name: "B=BF1 (approximate)", params: parabb.Params{Branching: parabb.BranchBF1}},
		{name: "B=DF (approximate)", params: parabb.Params{Branching: parabb.BranchDF}},
	}

	const runs = 12
	wp := parabb.DefaultWorkload()
	plat := parabb.NewPlatform(3)

	type agg struct {
		vertices, latenessSum int64
		worstGap              parabb.Time
		elapsed               time.Duration
	}
	results := make([]agg, len(ladder))
	var edfLatenessSum int64
	var optLatenessSum int64

	for i := 0; i < runs; i++ {
		g, err := parabb.RandomWorkload(wp, int64(9000+i))
		if err != nil {
			log.Fatal(err)
		}
		_, edfLmax, err := parabb.EDF(g, plat)
		if err != nil {
			log.Fatal(err)
		}
		edfLatenessSum += int64(edfLmax)

		var opt parabb.Time
		for r, rg := range ladder {
			params := rg.params
			params.Resources.TimeLimit = 30 * time.Second
			start := time.Now()
			var res parabb.Result
			if rg.par {
				res, err = parabb.SolveParallel(g, plat, parabb.ParallelParams{Params: params, Workers: 4})
			} else {
				res, err = parabb.Solve(g, plat, params)
			}
			if err != nil {
				log.Fatal(err)
			}
			if r == 0 {
				opt = res.Cost
				optLatenessSum += int64(opt)
			}
			results[r].vertices += res.Stats.Generated
			results[r].latenessSum += int64(res.Cost)
			results[r].elapsed += time.Since(start)
			if gap := res.Cost - opt; gap > results[r].worstGap {
				results[r].worstGap = gap
			}
		}
	}

	fmt.Printf("strategy ladder over %d random paper workloads (m=3):\n\n", runs)
	fmt.Printf("%-26s %14s %12s %12s %12s\n",
		"strategy", "avg vertices", "avg Lmax", "worst gap", "total time")
	for r, rg := range ladder {
		fmt.Printf("%-26s %14d %12.1f %12d %12v\n",
			rg.name,
			results[r].vertices/runs,
			float64(results[r].latenessSum)/runs,
			results[r].worstGap,
			results[r].elapsed.Round(time.Millisecond))
	}
	fmt.Printf("%-26s %14d %12.1f\n", "EDF greedy (reference)", 0,
		float64(edfLatenessSum)/runs)

	fmt.Println("\nreading the ladder (paper C3):")
	fmt.Println("  - BR=10% keeps lateness within its guarantee at a fraction of the search;")
	fmt.Println("  - DF/BF1 collapse the task-order dimension entirely: massive savings,")
	fmt.Println("    no guarantee — DF can even lose to greedy EDF on small machines;")
	fmt.Println("  - the parallel solver buys wall-clock speed, never quality.")
}
