// DSP: schedule a digital-signal-processing dataflow graph — the second
// application domain the paper's introduction cites (Konstantinides et al.)
// — and study how the communication-to-computation ratio (CCR) decides
// whether spreading the parallel FFT stage across processors pays off.
//
// The graph is a classic split–process–merge pipeline: an input frame is
// windowed, split into four sub-band FFTs, filtered per band, then
// recombined. With cheap communication the four bands run on different
// processors; as messages grow, the optimal schedule collapses the bands
// onto fewer processors — and the B&B solver finds the crossover exactly.
//
//	go run ./examples/dsp
package main

import (
	"fmt"
	"log"

	parabb "repro"
)

// buildDSP returns the pipeline with the given inter-stage message size.
func buildDSP(msg parabb.Time) *parabb.Graph {
	g := parabb.NewGraph(11)
	window := g.AddTask(parabb.Task{Name: "window", Exec: 6, Deadline: 18})
	split := g.AddTask(parabb.Task{Name: "split", Exec: 4, Deadline: 26})
	g.MustAddEdge(window, split, msg)

	var filters []parabb.TaskID
	for i := 0; i < 4; i++ {
		fft := g.AddTask(parabb.Task{Name: fmt.Sprintf("fft%d", i), Exec: 10, Deadline: 52})
		fir := g.AddTask(parabb.Task{Name: fmt.Sprintf("fir%d", i), Exec: 6, Deadline: 72})
		g.MustAddEdge(split, fft, msg)
		g.MustAddEdge(fft, fir, msg)
		filters = append(filters, fir)
	}
	merge := g.AddTask(parabb.Task{Name: "merge", Exec: 8, Deadline: 96})
	for _, f := range filters {
		g.MustAddEdge(f, merge, msg)
	}
	return g
}

func main() {
	plat := parabb.NewPlatform(4)
	fmt.Println("4-band DSP pipeline on a 4-processor shared-bus system")
	fmt.Printf("%-8s %-12s %-12s %-10s %s\n", "msgSize", "optimal Lmax", "EDF Lmax", "vertices", "distinct procs used")

	for _, msg := range []parabb.Time{0, 2, 4, 8, 16, 32} {
		g := buildDSP(msg)
		res, err := parabb.Solve(g, plat, parabb.Params{})
		if err != nil {
			log.Fatal(err)
		}
		_, edfLmax, err := parabb.EDF(g, plat)
		if err != nil {
			log.Fatal(err)
		}
		used := map[parabb.Proc]bool{}
		for _, t := range g.Tasks() {
			used[res.Schedule.Proc(t.ID)] = true
		}
		fmt.Printf("%-8d %-12d %-12d %-10d %d\n",
			msg, res.Cost, edfLmax, res.Stats.Generated, len(used))
	}

	// Show the two regimes side by side.
	for _, msg := range []parabb.Time{2, 32} {
		g := buildDSP(msg)
		res, err := parabb.Solve(g, plat, parabb.Params{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\noptimal schedule at message size %d (Lmax=%d):\n", msg, res.Cost)
		fmt.Print(parabb.GanttText(res.Schedule, 76))
	}

	fmt.Println("\nNote how large messages pull the FFT bands back onto fewer")
	fmt.Println("processors: the bus cost of shipping frames exceeds the gain")
	fmt.Println("from parallel execution — the trade-off the paper's CCR")
	fmt.Println("experiment (§6) quantifies on random workloads.")
}
