// Quickstart: build a small task graph by hand, find the optimal schedule
// with the branch-and-bound solver, compare it against the greedy EDF
// baseline, and render the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	parabb "repro"
)

func main() {
	// A five-task "sense → {filter, estimate} → fuse → act" pipeline with a
	// parallel middle stage. Message sizes are data items; on the shared
	// bus one item costs one time unit between distinct processors.
	g := parabb.NewGraph(5)
	sense := g.AddTask(parabb.Task{Name: "sense", Exec: 4, Deadline: 10})
	filter := g.AddTask(parabb.Task{Name: "filter", Exec: 8, Deadline: 20})
	estim := g.AddTask(parabb.Task{Name: "estimate", Exec: 9, Deadline: 20})
	fuse := g.AddTask(parabb.Task{Name: "fuse", Exec: 5, Deadline: 34})
	act := g.AddTask(parabb.Task{Name: "act", Exec: 2, Deadline: 40})
	g.MustAddEdge(sense, filter, 3)
	g.MustAddEdge(sense, estim, 3) // 3 data items = 3 bus ticks cross-processor
	g.MustAddEdge(filter, fuse, 2)
	g.MustAddEdge(estim, fuse, 2)
	g.MustAddEdge(fuse, act, 1)

	plat := parabb.NewPlatform(2)

	// Greedy baseline first: polynomial time, no optimality.
	_, edfLmax, err := parabb.EDF(g, plat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EDF greedy:   Lmax = %d\n", edfLmax)

	// Exact branch-and-bound. The zero Params value is the paper's
	// recommended configuration (LIFO, BFn, LB1, EDF-seeded bound, BR=0).
	res, err := parabb.Solve(g, plat, parabb.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B&B optimal:  Lmax = %d (proven optimal: %v)\n", res.Cost, res.Optimal)
	fmt.Printf("search: %d vertices generated, %d expanded, %d complete schedules seen\n\n",
		res.Stats.Generated, res.Stats.Expanded, res.Stats.Goals)

	fmt.Print(parabb.GanttText(res.Schedule, 72))

	// Negative lateness = slack before each deadline; any positive value
	// would mean a deadline miss.
	fmt.Println("\nper-task lateness:")
	for _, t := range g.Tasks() {
		fmt.Printf("  %-9s finish=%3d deadline=%3d lateness=%d\n",
			t.Name, res.Schedule.Finish(t.ID), t.AbsDeadline(), res.Schedule.Lateness(t.ID))
	}
}
