// Avionics: schedule a periodic flight-control application — the class of
// hard real-time workload the paper's introduction motivates — on a
// dual-processor system.
//
// The application has two rate groups sharing the hyperperiod: a 40 ms
// inner loop (gyro → attitude control → servo) and an 80 ms outer loop
// (navigation → guidance), with all times in 1 ms ticks. The periodic
// system is unrolled over one hyperperiod and scheduled to minimize the
// maximum lateness; a non-positive optimum proves every invocation of
// every task meets its deadline, and the resulting table is the static
// cyclic schedule an avionics executive would load.
//
//	go run ./examples/avionics
package main

import (
	"fmt"
	"log"

	parabb "repro"
)

func main() {
	g := parabb.NewGraph(5)

	// Inner loop, period 40, end-to-end deadline inside the period.
	gyro := g.AddTask(parabb.Task{Name: "gyro", Exec: 4, Deadline: 10, Period: 40})
	ctrl := g.AddTask(parabb.Task{Name: "ctrl", Exec: 8, Phase: 10, Deadline: 16, Period: 40})
	servo := g.AddTask(parabb.Task{Name: "servo", Exec: 4, Phase: 26, Deadline: 12, Period: 40})
	g.MustAddEdge(gyro, ctrl, 2)
	g.MustAddEdge(ctrl, servo, 1)

	// Outer loop, period 80.
	nav := g.AddTask(parabb.Task{Name: "nav", Exec: 18, Deadline: 40, Period: 80})
	guid := g.AddTask(parabb.Task{Name: "guid", Exec: 12, Phase: 40, Deadline: 36, Period: 80})
	g.MustAddEdge(nav, guid, 3)

	ex, err := parabb.Unroll(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hyperperiod: %d ms, %d task invocations, %d precedence arcs\n",
		ex.Hyperperiod, ex.Graph.NumTasks(), ex.Graph.NumEdges())

	plat := parabb.NewPlatform(2)
	res, err := parabb.Solve(ex.Graph, plat, parabb.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal Lmax over the hyperperiod: %d ms (optimal proven: %v)\n",
		res.Cost, res.Optimal)
	if res.Cost <= 0 {
		fmt.Println("=> every invocation of every task meets its deadline;")
		fmt.Printf("=> worst-case slack before any deadline: %d ms\n", -res.Cost)
	} else {
		fmt.Println("=> the task set is NOT schedulable on 2 processors")
	}

	fmt.Println("\nstatic cyclic schedule (one hyperperiod):")
	fmt.Print(parabb.GanttText(res.Schedule, 80))

	// The per-invocation table, as an executive would consume it.
	fmt.Println("\ndispatch table:")
	for _, ids := range ex.IDs {
		for k, id := range ids {
			inv := ex.Graph.Task(id)
			fmt.Printf("  %-8s k=%d  proc=p%d  start=%3d  finish=%3d  window=[%3d,%3d]\n",
				g.Task(ex.Of[int(ids[k])].Orig).Name, k+1,
				res.Schedule.Proc(id), res.Schedule.Start(id), res.Schedule.Finish(id),
				inv.Arrival(), inv.AbsDeadline())
		}
	}

	// How much headroom does the second processor buy? Compare with m=1.
	res1, err := parabb.Solve(ex.Graph, parabb.NewPlatform(1), parabb.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-processor optimum for comparison: Lmax=%d ms\n", res1.Cost)
}
