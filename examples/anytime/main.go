// Anytime: the practitioner's workflow on a hard instance — certified
// bounds first, greedy schedules instantly, local search next, and exactly
// as much branch-and-bound as the time budget allows, warm-started with
// everything learned so far.
//
// The program builds an overloaded workload (laxity < 1, so some deadline
// miss is unavoidable and provable), shows the infeasibility certificate,
// and then walks the pipeline with growing budgets until the result is
// proven optimal.
//
//	go run ./examples/anytime
package main

import (
	"fmt"
	"log"
	"time"

	parabb "repro"
)

func main() {
	// An overloaded paper-style workload: laxity 0.9 guarantees that not
	// every window can be met, so the interesting question is HOW late the
	// best schedule must be.
	wp := parabb.DefaultWorkload()
	wp.Laxity = 0.9
	g := parabb.NewWorkload(wp, 2024).Graph()
	if err := parabb.AssignDeadlines(g, wp.Laxity, parabb.SliceEqualSlack); err != nil {
		log.Fatal(err)
	}
	plat := parabb.NewPlatform(3)

	// Stage 0: what can be said without scheduling anything?
	rep, err := parabb.Analyze(g, plat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	if rep.Infeasible() {
		fmt.Printf("=> certified: every schedule misses a deadline by >= %d ticks\n\n", rep.Lower)
	}

	// The pipeline under growing budgets.
	for _, budget := range []time.Duration{0, 50 * time.Millisecond, 5 * time.Second} {
		res, err := parabb.SolveAnytime(g, plat, parabb.PortfolioOptions{
			Budget: budget, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %-8v: %s\n", budget, res)
		if budget == 0 {
			fmt.Printf("               (greedy winner: %s)\n", res.Greedy)
		}
		if res.Optimal {
			fmt.Println("\nfinal schedule:")
			fmt.Print(parabb.GanttText(res.Schedule, 76))
			break
		}
	}

	// The single-machine preemptive relaxation, for perspective: how much
	// of the residual lateness is sheer workload (even one infinitely
	// flexible processor cannot do better than this on the serialized
	// critical structure)?
	pre, err := parabb.PreemptiveSchedule(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npreemptive 1-machine relaxation: Lmax=%d (%d preemptions)\n",
		pre.Lmax, pre.Preemptions)
}
